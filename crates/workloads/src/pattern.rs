//! Spatial unicast traffic patterns.
//!
//! The paper evaluates uniformly random unicast destinations; the wider
//! wormhole-model literature (Draper–Ghosh, Ould-Khaoua, Dally–Towles)
//! additionally stresses models with **hot-spot** and **permutation**
//! traffic. This module provides those patterns for both the analytical
//! model (as per-pair destination weights) and the simulator (as
//! destination samplers), keeping the two sides consistent by
//! construction.
//!
//! The permutation patterns are defined through the coordinate/bit
//! addressing helpers of [`noc_topology::addressing`]: the coordinate
//! permutations (transpose, tornado) need a square node grid, the bit
//! permutations (bit reversal, perfect shuffle) a power-of-two node count.
//! [`UnicastPattern::validate`] reports the mismatch as a typed
//! [`PatternError`] — a 9-node ring asked to run bit reversal degrades to
//! an error, not a panic. A permutation may map a node to itself (the
//! transpose diagonal, a palindromic address); such nodes fall back to
//! uniform destinations, exactly like the established `Complement`
//! self-map behaviour.

use crate::destinations::DestinationSets;
use noc_topology::{addressing, NodeId};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when a [`UnicastPattern`] does not fit a network.
#[derive(Clone, Debug, PartialEq)]
pub enum PatternError {
    /// The hot-spot node index lies outside the network.
    HotSpotOutOfRange {
        /// The offending node.
        node: NodeId,
        /// The network's node count.
        n: usize,
    },
    /// The hot-spot fraction is outside `[0, 1]` or non-finite.
    InvalidFraction(f64),
    /// A coordinate permutation (transpose, tornado) needs a square node
    /// grid.
    RequiresSquare {
        /// The pattern's name.
        pattern: &'static str,
        /// The non-square node count.
        n: usize,
    },
    /// A bit permutation (bit reversal, shuffle) needs a power-of-two
    /// node count.
    RequiresPowerOfTwo {
        /// The pattern's name.
        pattern: &'static str,
        /// The offending node count.
        n: usize,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::HotSpotOutOfRange { node, n } => {
                write!(f, "hot-spot node {node:?} outside 0..{n}")
            }
            PatternError::InvalidFraction(frac) => {
                write!(f, "hot-spot fraction {frac} outside [0, 1]")
            }
            PatternError::RequiresSquare { pattern, n } => {
                write!(
                    f,
                    "{pattern} traffic needs a square node grid; {n} nodes are not k x k"
                )
            }
            PatternError::RequiresPowerOfTwo { pattern, n } => {
                write!(
                    f,
                    "{pattern} traffic needs a power-of-two node count, got {n}"
                )
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// How unicast destinations are selected.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub enum UnicastPattern {
    /// Destinations uniform over the other `N − 1` nodes (the paper's
    /// assumption).
    #[default]
    Uniform,
    /// A fraction of every node's unicast traffic targets one hot node;
    /// the remainder is uniform. The hot node's own traffic stays uniform.
    HotSpot {
        /// The hot destination.
        node: NodeId,
        /// Fraction of traffic directed at it (`0 ≤ f ≤ 1`).
        fraction: f64,
    },
    /// Index-complement permutation: node `s` always sends to
    /// `N − 1 − s` (a node equal to its own complement falls back to
    /// uniform). A standard adversarial permutation: every message
    /// crosses the network.
    Complement,
    /// Matrix-transpose permutation on a square grid: `(x, y) → (y, x)`.
    /// Requires a square node count; diagonal nodes fall back to uniform.
    ///
    /// The grid is the row-major *index space* `√N × √N` — the physical
    /// layout of a square mesh/torus, and the literature's index-space
    /// interpretation everywhere else (including non-square-shaped
    /// networks whose node count happens to be square, e.g. an 8×2 mesh).
    Transpose,
    /// Bit-reversal permutation: the `log2 N`-bit address read backwards
    /// (the FFT communication pattern). Requires a power-of-two node
    /// count; palindromic addresses fall back to uniform.
    BitReversal,
    /// Perfect-shuffle permutation: the address rotated left by one bit.
    /// Requires a power-of-two node count; the all-zeros/all-ones
    /// addresses fall back to uniform.
    Shuffle,
    /// Tornado permutation: rotate almost half-way along the node's grid
    /// row — the classic adversary of minimal routing on rings and tori.
    /// Requires a square node count (same row-major index-space
    /// convention as [`UnicastPattern::Transpose`]).
    Tornado,
    /// Nearest-neighbour permutation in index order: `s → (s + 1) mod N`.
    /// Valid on every topology.
    Neighbor,
}

impl UnicastPattern {
    /// Validate against a network of `n` nodes.
    pub fn validate(&self, n: usize) -> Result<(), PatternError> {
        match *self {
            UnicastPattern::Uniform | UnicastPattern::Complement | UnicastPattern::Neighbor => {
                Ok(())
            }
            UnicastPattern::HotSpot { node, fraction } => {
                if node.idx() >= n {
                    return Err(PatternError::HotSpotOutOfRange { node, n });
                }
                if !(0.0..=1.0).contains(&fraction) || !fraction.is_finite() {
                    return Err(PatternError::InvalidFraction(fraction));
                }
                Ok(())
            }
            UnicastPattern::Transpose => match addressing::grid_side(n) {
                Some(_) => Ok(()),
                None => Err(PatternError::RequiresSquare {
                    pattern: "transpose",
                    n,
                }),
            },
            UnicastPattern::Tornado => match addressing::grid_side(n) {
                Some(_) => Ok(()),
                None => Err(PatternError::RequiresSquare {
                    pattern: "tornado",
                    n,
                }),
            },
            UnicastPattern::BitReversal => match addressing::log2_exact(n) {
                Some(_) => Ok(()),
                None => Err(PatternError::RequiresPowerOfTwo {
                    pattern: "bit-reversal",
                    n,
                }),
            },
            UnicastPattern::Shuffle => match addressing::log2_exact(n) {
                Some(_) => Ok(()),
                None => Err(PatternError::RequiresPowerOfTwo {
                    pattern: "shuffle",
                    n,
                }),
            },
        }
    }

    /// The fixed partner of `src` when this pattern is a permutation
    /// (`None` for the stochastic patterns). A returned partner may equal
    /// `src` (e.g. the transpose diagonal): such sources fall back to
    /// uniform destinations in [`UnicastPattern::weight`] and
    /// [`UnicastPattern::sample`].
    ///
    /// # Panics
    ///
    /// Panics if the pattern does not fit a network of `n` nodes — run
    /// [`UnicastPattern::validate`] first.
    pub fn permutation_partner(&self, n: usize, src: NodeId) -> Option<NodeId> {
        let require = |p: Option<NodeId>| {
            Some(p.expect("pattern does not fit this node count; validate() first"))
        };
        match *self {
            UnicastPattern::Uniform | UnicastPattern::HotSpot { .. } => None,
            UnicastPattern::Complement => Some(NodeId((n - 1 - src.idx()) as u32)),
            UnicastPattern::Transpose => require(addressing::transpose(n, src)),
            UnicastPattern::BitReversal => require(addressing::bit_reverse(n, src)),
            UnicastPattern::Shuffle => require(addressing::shuffle(n, src)),
            UnicastPattern::Tornado => require(addressing::tornado(n, src)),
            UnicastPattern::Neighbor => Some(addressing::neighbor(n, src)),
        }
    }

    /// Probability that a unicast generated at `src` targets `dst`
    /// (`src != dst`), over a network of `n` nodes. Rows sum to 1 over all
    /// `dst != src`.
    ///
    /// # Panics
    ///
    /// May panic if the pattern does not fit `n` nodes — run
    /// [`UnicastPattern::validate`] first.
    pub fn weight(&self, n: usize, src: NodeId, dst: NodeId) -> f64 {
        debug_assert!(src != dst && src.idx() < n && dst.idx() < n);
        let uniform = 1.0 / (n - 1) as f64;
        match *self {
            UnicastPattern::Uniform => uniform,
            UnicastPattern::HotSpot { node, fraction } => {
                if src == node {
                    uniform
                } else if dst == node {
                    fraction + (1.0 - fraction) * uniform
                } else {
                    (1.0 - fraction) * uniform
                }
            }
            _ => {
                let partner = self
                    .permutation_partner(n, src)
                    .expect("non-stochastic patterns have a partner");
                if partner == src {
                    uniform
                } else if dst == partner {
                    1.0
                } else {
                    0.0
                }
            }
        }
    }

    /// Sample a destination for a unicast generated at `src`, consistent
    /// with [`UnicastPattern::weight`].
    ///
    /// # Panics
    ///
    /// May panic if the pattern does not fit `n` nodes — run
    /// [`UnicastPattern::validate`] first.
    pub fn sample(&self, n: usize, src: NodeId, rng: &mut impl Rng) -> NodeId {
        match *self {
            UnicastPattern::Uniform => DestinationSets::random_unicast_dest(n, src, rng),
            UnicastPattern::HotSpot { node, fraction } => {
                if src != node && rng.gen::<f64>() < fraction {
                    node
                } else {
                    DestinationSets::random_unicast_dest(n, src, rng)
                }
            }
            _ => {
                let partner = self
                    .permutation_partner(n, src)
                    .expect("non-stochastic patterns have a partner");
                if partner == src {
                    DestinationSets::random_unicast_dest(n, src, rng)
                } else {
                    partner
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Every pattern that fits a 16-node network (square and a power of
    /// two, so all of them).
    fn all_patterns() -> Vec<UnicastPattern> {
        vec![
            UnicastPattern::Uniform,
            UnicastPattern::HotSpot {
                node: NodeId(3),
                fraction: 0.4,
            },
            UnicastPattern::Complement,
            UnicastPattern::Transpose,
            UnicastPattern::BitReversal,
            UnicastPattern::Shuffle,
            UnicastPattern::Tornado,
            UnicastPattern::Neighbor,
        ]
    }

    #[test]
    fn weights_are_distributions() {
        let n = 16;
        for pattern in all_patterns() {
            pattern.validate(n).unwrap();
            for s in 0..n as u32 {
                let src = NodeId(s);
                let total: f64 = (0..n as u32)
                    .map(NodeId)
                    .filter(|&d| d != src)
                    .map(|d| pattern.weight(n, src, d))
                    .sum();
                assert!(
                    (total - 1.0).abs() < 1e-12,
                    "{pattern:?} row {s} sums to {total}"
                );
            }
        }
    }

    #[test]
    fn hot_spot_concentrates_weight() {
        let p = UnicastPattern::HotSpot {
            node: NodeId(0),
            fraction: 0.5,
        };
        let w_hot = p.weight(10, NodeId(5), NodeId(0));
        let w_cold = p.weight(10, NodeId(5), NodeId(1));
        assert!(w_hot > 0.5);
        assert!(w_cold < 0.06);
        // Hot node's own traffic is uniform.
        assert!((p.weight(10, NodeId(0), NodeId(4)) - 1.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn complement_is_a_permutation() {
        let p = UnicastPattern::Complement;
        assert_eq!(p.weight(8, NodeId(1), NodeId(6)), 1.0);
        assert_eq!(p.weight(8, NodeId(1), NodeId(5)), 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(p.sample(8, NodeId(2), &mut rng), NodeId(5));
    }

    #[test]
    fn complement_self_map_falls_back_to_uniform() {
        // N = 9: node 4 is its own complement.
        let p = UnicastPattern::Complement;
        let src = NodeId(4);
        let total: f64 = (0..9u32)
            .map(NodeId)
            .filter(|&d| d != src)
            .map(|d| p.weight(9, src, d))
            .sum();
        assert!((total - 1.0).abs() < 1e-12);
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..100 {
            assert_ne!(p.sample(9, src, &mut rng), src);
        }
    }

    #[test]
    fn permutation_samples_hit_the_partner() {
        let n = 16;
        let mut rng = SmallRng::seed_from_u64(5);
        for pattern in [
            UnicastPattern::Transpose,
            UnicastPattern::BitReversal,
            UnicastPattern::Shuffle,
            UnicastPattern::Tornado,
            UnicastPattern::Neighbor,
        ] {
            for s in 0..n as u32 {
                let src = NodeId(s);
                let partner = pattern.permutation_partner(n, src).unwrap();
                let got = pattern.sample(n, src, &mut rng);
                if partner == src {
                    assert_ne!(got, src, "{pattern:?}: self-map must fall back");
                } else {
                    assert_eq!(got, partner, "{pattern:?} at {src:?}");
                    assert_eq!(pattern.weight(n, src, partner), 1.0);
                }
            }
        }
    }

    #[test]
    fn transpose_diagonal_falls_back_to_uniform() {
        let p = UnicastPattern::Transpose;
        let diag = NodeId(5); // (1,1) on the 4x4 grid
        assert_eq!(p.permutation_partner(16, diag), Some(diag));
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..100 {
            assert_ne!(p.sample(16, diag, &mut rng), diag);
        }
    }

    #[test]
    fn sampling_matches_weights_empirically() {
        let p = UnicastPattern::HotSpot {
            node: NodeId(2),
            fraction: 0.3,
        };
        let n = 8;
        let src = NodeId(6);
        let mut rng = SmallRng::seed_from_u64(11);
        let trials = 200_000;
        let mut counts = vec![0usize; n];
        for _ in 0..trials {
            counts[p.sample(n, src, &mut rng).idx()] += 1;
        }
        assert_eq!(counts[src.idx()], 0);
        for d in 0..n as u32 {
            let d = NodeId(d);
            if d == src {
                continue;
            }
            let expected = p.weight(n, src, d);
            let got = counts[d.idx()] as f64 / trials as f64;
            assert!(
                (got - expected).abs() < 0.01,
                "dest {d:?}: sampled {got}, weight {expected}"
            );
        }
    }

    #[test]
    fn validation() {
        assert!(UnicastPattern::Uniform.validate(4).is_ok());
        assert!(matches!(
            UnicastPattern::HotSpot {
                node: NodeId(9),
                fraction: 0.1
            }
            .validate(8),
            Err(PatternError::HotSpotOutOfRange { .. })
        ));
        assert!(matches!(
            UnicastPattern::HotSpot {
                node: NodeId(1),
                fraction: 1.5
            }
            .validate(8),
            Err(PatternError::InvalidFraction(_))
        ));
        assert!(UnicastPattern::HotSpot {
            node: NodeId(1),
            fraction: 0.5
        }
        .validate(8)
        .is_ok());
    }

    #[test]
    fn structured_patterns_reject_unstructured_node_counts() {
        // 12 nodes: neither square nor a power of two.
        for (pattern, square) in [
            (UnicastPattern::Transpose, true),
            (UnicastPattern::Tornado, true),
            (UnicastPattern::BitReversal, false),
            (UnicastPattern::Shuffle, false),
        ] {
            let err = pattern.validate(12).unwrap_err();
            if square {
                assert!(matches!(err, PatternError::RequiresSquare { n: 12, .. }));
            } else {
                assert!(matches!(
                    err,
                    PatternError::RequiresPowerOfTwo { n: 12, .. }
                ));
            }
            assert!(!err.to_string().is_empty());
            assert!(pattern.validate(16).is_ok(), "{pattern:?} fits 16");
        }
        // 9 nodes: square but not a power of two.
        assert!(UnicastPattern::Transpose.validate(9).is_ok());
        assert!(UnicastPattern::BitReversal.validate(9).is_err());
        // Neighbor fits anything with two nodes.
        assert!(UnicastPattern::Neighbor.validate(5).is_ok());
    }
}
