//! # noc-workloads
//!
//! Traffic specification and experiment plumbing for the IPDPS 2009
//! reproduction.
//!
//! * [`workload`] — the [`Workload`] description shared by the analytical
//!   model and the simulator: message length, per-node Poisson generation
//!   rate, multicast fraction `α` and the fixed per-node multicast
//!   destination sets (the paper fixes destination sets at the beginning of
//!   the simulation, §4).
//! * [`destinations`] — destination-set generators: uniformly random sets
//!   (Fig. 6), localized same-rim sets (Fig. 7), broadcast and explicit
//!   sets.
//! * [`traffic`] — temporal arrival-process specifications
//!   ([`TrafficSpec`]): the paper's memoryless geometric source, bursty
//!   on/off sources with mean-rate matching, and deterministic trace
//!   replay.
//! * [`sweep`] — message-rate sweeps for the latency-vs-rate figures.
//! * [`table`] — minimal CSV/aligned-table writers (no external deps).
//! * [`parallel`] — an order-preserving parallel map built on crossbeam
//!   scoped threads (rayon is not in the approved offline crate set; this
//!   is the minimal substitute the sweep executors use).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod destinations;
pub mod parallel;
pub mod pattern;
pub mod sweep;
pub mod table;
pub mod traffic;
pub mod workload;

pub use destinations::DestinationSets;
pub use parallel::parallel_map;
pub use pattern::{PatternError, UnicastPattern};
pub use sweep::{RateSweep, SweepError};
pub use traffic::{TraceEntry, TraceKind, TrafficError, TrafficSpec};
pub use workload::{Workload, WorkloadError};

// The routing selector lives next to the stream constructions in
// `noc_topology::routing`; re-exported here because it is set on
// [`Workload`] exactly like the traffic/pattern specs above.
pub use noc_topology::{RoutingError, RoutingSpec};
