//! The workload description shared by the model and the simulator.

use crate::destinations::DestinationSets;
use crate::pattern::UnicastPattern;
use crate::traffic::{TrafficError, TrafficSpec};
use noc_topology::{NodeId, RoutingSpec};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when constructing a [`Workload`].
#[derive(Clone, Debug, PartialEq)]
pub enum WorkloadError {
    /// Message length must be at least 1 flit.
    ZeroLengthMessage,
    /// The per-node generation rate must lie in `[0, 1)` messages/cycle.
    InvalidRate(f64),
    /// The multicast fraction must lie in `[0, 1]`.
    InvalidFraction(f64),
    /// The arrival-process specification is inconsistent with the
    /// workload (e.g. an on/off peak rate at or below the mean rate).
    Traffic(TrafficError),
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::ZeroLengthMessage => write!(f, "message length must be >= 1 flit"),
            WorkloadError::InvalidRate(r) => {
                write!(
                    f,
                    "generation rate {r} must be in [0, 1) messages/node/cycle"
                )
            }
            WorkloadError::InvalidFraction(a) => {
                write!(f, "multicast fraction {a} must be in [0, 1]")
            }
            WorkloadError::Traffic(e) => write!(f, "traffic: {e}"),
        }
    }
}

impl From<TrafficError> for WorkloadError {
    fn from(e: TrafficError) -> Self {
        WorkloadError::Traffic(e)
    }
}

impl std::error::Error for WorkloadError {}

/// A complete traffic specification.
///
/// Every node generates messages as a Poisson process of `gen_rate`
/// messages/cycle; a generated message is a multicast with probability
/// `multicast_fraction` (α in the figures) and a unicast with a uniformly
/// random destination otherwise. Multicast destination sets are fixed per
/// node in `sets`. All messages are `msg_len` flits long (the paper assumes
/// a single message size per configuration).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Workload {
    /// Message length in flits (`M` in the figures).
    pub msg_len: u32,
    /// Per-node message generation rate, messages/cycle (the x-axis of
    /// Fig. 6–7).
    pub gen_rate: f64,
    /// Fraction of generated messages that are multicast (`α`).
    pub multicast_fraction: f64,
    /// Fixed per-node multicast destination sets.
    pub sets: DestinationSets,
    /// Spatial pattern of unicast destinations (uniform in the paper;
    /// hot-spot and the permutation patterns provided as extensions).
    pub unicast_pattern: UnicastPattern,
    /// Temporal arrival process of every node's source (memoryless
    /// geometric gaps in the paper; on/off bursts and trace replay
    /// provided as extensions).
    pub traffic: TrafficSpec,
    /// Multicast routing scheme (the paper's path-based BRCP by default;
    /// dual-path, partitioned multipath and the unicast baseline provided
    /// as extensions).
    pub routing: RoutingSpec,
}

impl Workload {
    /// Validated constructor.
    pub fn new(
        msg_len: u32,
        gen_rate: f64,
        multicast_fraction: f64,
        sets: DestinationSets,
    ) -> Result<Self, WorkloadError> {
        if msg_len == 0 {
            return Err(WorkloadError::ZeroLengthMessage);
        }
        if !gen_rate.is_finite() || !(0.0..1.0).contains(&gen_rate) {
            return Err(WorkloadError::InvalidRate(gen_rate));
        }
        if !multicast_fraction.is_finite() || !(0.0..=1.0).contains(&multicast_fraction) {
            return Err(WorkloadError::InvalidFraction(multicast_fraction));
        }
        Ok(Workload {
            msg_len,
            gen_rate,
            multicast_fraction,
            sets,
            unicast_pattern: UnicastPattern::Uniform,
            traffic: TrafficSpec::Geometric,
            routing: RoutingSpec::PathBased,
        })
    }

    /// Replace the unicast destination pattern (builder style).
    ///
    /// The pattern must be valid for the topology's node count — checked
    /// by the simulator and the model at construction time.
    pub fn with_unicast_pattern(mut self, pattern: UnicastPattern) -> Self {
        self.unicast_pattern = pattern;
        self
    }

    /// Replace the arrival process (builder style).
    ///
    /// The spec must be consistent with the generation rate and the
    /// topology's node count — checked by [`Workload::at_rate`], the
    /// simulator and the experiment layer at construction time.
    pub fn with_traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = traffic;
        self
    }

    /// Replace the multicast routing scheme (builder style).
    ///
    /// The scheme must be realizable on the topology (e.g. dual-path and
    /// multipath need multi-port routers) — checked by the simulator's
    /// plan construction and, as a typed error, by the experiment layer.
    pub fn with_routing(mut self, routing: RoutingSpec) -> Self {
        self.routing = routing;
        self
    }

    /// Per-node unicast generation rate `(1 − α)·λ_g`.
    #[inline]
    pub fn unicast_rate(&self) -> f64 {
        (1.0 - self.multicast_fraction) * self.gen_rate
    }

    /// Per-node multicast operation rate `α·λ_g`.
    #[inline]
    pub fn multicast_rate(&self) -> f64 {
        self.multicast_fraction * self.gen_rate
    }

    /// A copy of this workload at a different generation rate (used by the
    /// rate sweeps of Fig. 6–7). Rejects rates the arrival process cannot
    /// realize (an on/off source cannot average more than its peak rate).
    pub fn at_rate(&self, gen_rate: f64) -> Result<Self, WorkloadError> {
        self.traffic.validate(self.sets.num_nodes(), gen_rate)?;
        Ok(Workload::new(
            self.msg_len,
            gen_rate,
            self.multicast_fraction,
            self.sets.clone(),
        )?
        .with_unicast_pattern(self.unicast_pattern)
        .with_traffic(self.traffic.clone())
        .with_routing(self.routing))
    }

    /// The multicast destination set of `node`.
    #[inline]
    pub fn multicast_set(&self, node: NodeId) -> &[NodeId] {
        self.sets.set(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::{Quarc, Topology};

    fn sets() -> DestinationSets {
        let topo = Quarc::new(16).unwrap();
        DestinationSets::random(&topo, 4, 1)
    }

    #[test]
    fn validation_rejects_bad_parameters() {
        assert!(matches!(
            Workload::new(0, 0.01, 0.05, sets()),
            Err(WorkloadError::ZeroLengthMessage)
        ));
        assert!(matches!(
            Workload::new(32, 1.0, 0.05, sets()),
            Err(WorkloadError::InvalidRate(_))
        ));
        assert!(matches!(
            Workload::new(32, -0.1, 0.05, sets()),
            Err(WorkloadError::InvalidRate(_))
        ));
        assert!(matches!(
            Workload::new(32, 0.01, 1.5, sets()),
            Err(WorkloadError::InvalidFraction(_))
        ));
    }

    #[test]
    fn class_rates_split_generation_rate() {
        let w = Workload::new(32, 0.02, 0.1, sets()).unwrap();
        assert!((w.unicast_rate() - 0.018).abs() < 1e-12);
        assert!((w.multicast_rate() - 0.002).abs() < 1e-12);
        assert!((w.unicast_rate() + w.multicast_rate() - w.gen_rate).abs() < 1e-12);
    }

    #[test]
    fn at_rate_changes_only_rate() {
        let w = Workload::new(32, 0.02, 0.1, sets())
            .unwrap()
            .with_routing(RoutingSpec::Multipath);
        let w2 = w.at_rate(0.001).unwrap();
        assert_eq!(w2.msg_len, 32);
        assert_eq!(w2.multicast_fraction, 0.1);
        assert_eq!(w2.gen_rate, 0.001);
        assert_eq!(w2.sets, w.sets);
        assert_eq!(w2.routing, RoutingSpec::Multipath, "routing is preserved");
    }

    #[test]
    fn routing_defaults_to_path_based() {
        let w = Workload::new(32, 0.02, 0.1, sets()).unwrap();
        assert_eq!(w.routing, RoutingSpec::PathBased);
    }

    #[test]
    fn multicast_set_lookup() {
        let topo = Quarc::new(16).unwrap();
        let w = Workload::new(16, 0.005, 0.03, DestinationSets::broadcast(&topo)).unwrap();
        assert_eq!(w.multicast_set(NodeId(2)).len(), topo.num_nodes() - 1);
    }
}
