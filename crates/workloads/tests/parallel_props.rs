//! Property tests for `noc_workloads::parallel::parallel_map`: for every
//! input and worker count the result must equal the sequential map (order
//! preservation), and any thread count must degrade gracefully to the
//! serial result.

use noc_workloads::parallel::{effective_threads, parallel_map};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matches_sequential_map_in_order(
        items in proptest::collection::vec(0u64..1_000_000, 0..200),
        threads in 0usize..9,
    ) {
        let expected: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(2654435761) ^ x).collect();
        let got = parallel_map(&items, threads, |&x| x.wrapping_mul(2654435761) ^ x);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn thread_count_does_not_change_the_result(
        items in proptest::collection::vec(0u64..1_000, 1..64),
        threads in 2usize..17,
    ) {
        let serial = parallel_map(&items, 1, |&x| x + 1);
        let parallel = parallel_map(&items, threads, |&x| x + 1);
        prop_assert_eq!(parallel, serial);
    }

    #[test]
    fn oversubscribed_threads_degrade_to_item_count(
        len in 1usize..8,
        threads in 8usize..64,
    ) {
        // More workers than items must still process each item exactly once.
        let items: Vec<usize> = (0..len).collect();
        let got = parallel_map(&items, threads, |&i| i * i);
        prop_assert_eq!(got.len(), len);
        for (i, v) in got.iter().enumerate() {
            prop_assert_eq!(*v, i * i);
        }
    }

    #[test]
    fn effective_threads_is_positive(requested in 0usize..32) {
        let n = effective_threads(requested);
        prop_assert!(n >= 1);
        if requested > 0 {
            prop_assert_eq!(n, requested);
        }
    }
}
