//! Saturation-rate search.
//!
//! The figure sweeps plot latency up to the onset of saturation. This
//! module locates the largest sustainable generation rate by bisection on
//! the model's saturation error — giving every `(N, M, α)` configuration a
//! natural x-axis range, like the paper's curves which end just before the
//! latency asymptote.

use crate::backend::{MgOneBackend, ModelBackend};
use crate::options::ModelOptions;
use noc_topology::Topology;
use noc_workloads::Workload;

/// Largest generation rate (messages/node/cycle) the paper's M/G/1 model
/// deems stable, found by bisection within `tol` relative precision.
///
/// Thin wrapper over
/// [`MgOneBackend::max_sustainable_rate`](ModelBackend::max_sustainable_rate);
/// other backends answer the same question through the trait.
///
/// Returns 0.0 if even the smallest probed rate saturates.
pub fn max_sustainable_rate(
    topo: &dyn Topology,
    proto: &Workload,
    opts: ModelOptions,
    tol: f64,
) -> f64 {
    MgOneBackend.max_sustainable_rate(topo, proto, &opts, tol)
}

/// The bisection driver shared by every backend: the largest rate in
/// `(0, 0.999]` satisfying `stable`, within `tol` relative precision.
///
/// `stable` must be monotone (true below some threshold, false above);
/// rates `<= 0` must report stable. Returns 0.0 if even the smallest
/// probed rate (`1e-4`) is unstable.
pub fn bisect_max_rate(tol: f64, stable: impl Fn(f64) -> bool) -> f64 {
    // Exponential search upward for an unstable bracket.
    let mut lo = 0.0f64;
    let mut hi = 1e-4;
    while hi < 0.999 && stable(hi) {
        lo = hi;
        hi = (hi * 2.0).min(0.999);
    }
    if hi >= 0.999 && stable(hi) {
        return hi; // effectively unsaturable in the probed range
    }
    if lo == 0.0 && !stable(hi) && hi <= 1e-4 {
        return 0.0;
    }
    // Bisection.
    while (hi - lo) > tol * hi.max(1e-12) {
        let mid = 0.5 * (lo + hi);
        if stable(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::AnalyticModel;
    use noc_topology::Quarc;
    use noc_workloads::DestinationSets;

    fn proto(n: usize, msg: u32, alpha: f64) -> (Quarc, Workload) {
        let topo = Quarc::new(n).unwrap();
        let sets = DestinationSets::random(&topo, n / 4, 1);
        let wl = Workload::new(msg, 1e-4, alpha, sets).unwrap();
        (topo, wl)
    }

    #[test]
    fn finds_a_positive_stable_rate() {
        let (topo, wl) = proto(16, 32, 0.05);
        let r = max_sustainable_rate(&topo, &wl, ModelOptions::default(), 0.02);
        assert!(r > 0.001, "saturation rate should exceed 0.001, got {r}");
        assert!(r < 0.2, "saturation rate should be well below 0.2, got {r}");
        // The returned rate must itself be stable...
        let wl_ok = wl.at_rate(r).unwrap();
        assert!(AnalyticModel::new(&topo, &wl_ok, ModelOptions::default())
            .evaluate()
            .is_ok());
        // ...and 1.2x beyond it must not be.
        let wl_bad = wl.at_rate((r * 1.2).min(0.99)).unwrap();
        assert!(AnalyticModel::new(&topo, &wl_bad, ModelOptions::default())
            .evaluate()
            .is_err());
    }

    #[test]
    fn longer_messages_saturate_earlier() {
        let (topo, wl16) = proto(16, 16, 0.05);
        let (_, wl64) = proto(16, 64, 0.05);
        let r16 = max_sustainable_rate(&topo, &wl16, ModelOptions::default(), 0.02);
        let r64 = max_sustainable_rate(&topo, &wl64, ModelOptions::default(), 0.02);
        assert!(
            r64 < r16,
            "64-flit messages must saturate at a lower rate ({r64} vs {r16})"
        );
    }

    #[test]
    fn more_multicast_saturates_earlier() {
        // Multicast replicates every message over four streams, so raising
        // alpha raises the offered flit load at fixed generation rate.
        let (topo, wl_lo) = proto(16, 32, 0.03);
        let (_, wl_hi) = proto(16, 32, 0.5);
        let r_lo = max_sustainable_rate(&topo, &wl_lo, ModelOptions::default(), 0.02);
        let r_hi = max_sustainable_rate(&topo, &wl_hi, ModelOptions::default(), 0.02);
        assert!(
            r_hi < r_lo,
            "alpha 0.5 must saturate earlier ({r_hi} vs {r_lo})"
        );
    }
}
