//! Per-channel arrival rates and next-channel decomposition.
//!
//! The model's inputs are, per channel `j`, the aggregate Poisson arrival
//! rate `λ_j` and, per ordered channel pair `(i, j)`, the rate `λ_{i→j}` of
//! traffic that traverses `i` immediately before `j`. Both are accumulated
//! by walking every deterministic route with its offered rate:
//!
//! * each unicast pair `(s, d)` carries `(1 − α)·λ_g / (N − 1)`;
//! * each multicast stream of node `s` — constructed by the workload's
//!   routing scheme (`RoutingSpec`, the paper's path-based BRCP by
//!   default) — carries `α·λ_g` (the transceiver emits one packet per
//!   stream per operation; under the unicast baseline that is one packet
//!   per destination).

use crate::options::ModelOptions;
use noc_topology::{ChannelId, ChannelKind, NodeId, Path, Topology};
use noc_workloads::Workload;

/// Channel loads extracted from a routed workload.
#[derive(Clone, Debug)]
pub struct ChannelLoads {
    /// Aggregate arrival rate per channel (indexed by `ChannelId`).
    pub lambda: Vec<f64>,
    /// Successor decomposition: for each channel, the list of
    /// `(next_channel, rate)` pairs with positive rate.
    pub successors: Vec<Vec<(ChannelId, f64)>>,
}

impl ChannelLoads {
    /// Accumulate the loads for `wl` routed over `topo`.
    pub fn build(topo: &dyn Topology, wl: &Workload, opts: &ModelOptions) -> Self {
        let net = topo.network();
        let nc = net.num_channels();
        let n = net.num_nodes();
        let mut loads = ChannelLoads {
            lambda: vec![0.0; nc],
            successors: vec![Vec::new(); nc],
        };

        // Unicast: per-pair rate is the generation rate scaled by the
        // destination pattern's weight (uniform = 1/(N-1), the paper's
        // assumption; hot-spot/complement as extensions).
        let uni_rate = wl.unicast_rate();
        if uni_rate > 0.0 {
            wl.unicast_pattern
                .validate(n)
                .expect("unicast pattern must fit the topology");
            for s in 0..n {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let (s, d) = (NodeId(s as u32), NodeId(d as u32));
                    let w = wl.unicast_pattern.weight(n, s, d);
                    if w <= 0.0 {
                        continue;
                    }
                    let path = topo.unicast_path(s, d);
                    loads.add_path(&path, uni_rate * w);
                }
            }
        }

        // Multicast: fixed per-node streams, each at the operation rate.
        let mc_rate = wl.multicast_rate();
        for s in 0..n {
            let src = NodeId(s as u32);
            let set = wl.multicast_set(src);
            if set.is_empty() {
                continue;
            }
            for stream in wl.routing.streams(topo, src, set) {
                if mc_rate > 0.0 {
                    loads.add_path(&stream.path, mc_rate);
                    if opts.clone_ejection_load {
                        // Clones at intermediate targets occupy that node's
                        // ejection channel for the arrival direction.
                        for hop in &stream.path.hops[1..stream.path.hops.len() - 1] {
                            let ch = net.channel(hop.channel);
                            if ch.kind == ChannelKind::Link
                                && stream.targets.contains(&ch.to)
                                && ch.to != stream.path.dst
                            {
                                let ej = net.ejection_channel(ch.to, ch.port);
                                loads.lambda[ej.idx()] += mc_rate;
                            }
                        }
                    }
                }
            }
        }
        loads
    }

    fn add_path(&mut self, path: &Path, rate: f64) {
        for c in path.channels() {
            self.lambda[c.idx()] += rate;
        }
        for (a, b) in path.transitions() {
            let succ = &mut self.successors[a.idx()];
            match succ.iter_mut().find(|(c, _)| *c == b) {
                Some((_, r)) => *r += rate,
                None => succ.push((b, rate)),
            }
        }
    }

    /// Rate of traffic moving from channel `i` directly to channel `j`.
    pub fn transition(&self, i: ChannelId, j: ChannelId) -> f64 {
        self.successors[i.idx()]
            .iter()
            .find(|(c, _)| *c == j)
            .map(|(_, r)| *r)
            .unwrap_or(0.0)
    }

    /// Probability of taking channel `j` after channel `i` (`P_{i→j}`).
    pub fn p_next(&self, i: ChannelId, j: ChannelId) -> f64 {
        let li = self.lambda[i.idx()];
        if li <= 0.0 {
            0.0
        } else {
            self.transition(i, j) / li
        }
    }

    /// Largest `λ_j · msg` lower bound on utilisation — a quick saturation
    /// screen before solving the fixed point.
    pub fn min_rho_bound(&self, msg_len: f64) -> f64 {
        self.lambda.iter().copied().fold(0.0, f64::max) * msg_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::Quarc;
    use noc_workloads::DestinationSets;

    fn workload(topo: &dyn Topology, rate: f64, alpha: f64) -> Workload {
        Workload::new(32, rate, alpha, DestinationSets::random(topo, 4, 1)).unwrap()
    }

    #[test]
    fn unicast_rates_are_symmetric_on_the_quarc() {
        // Uniform traffic on a vertex-symmetric topology loads all
        // clockwise rim links identically.
        let topo = Quarc::new(16).unwrap();
        let wl = workload(&topo, 0.01, 0.0);
        let loads = ChannelLoads::build(&topo, &wl, &ModelOptions::default());
        let net = topo.network();
        let cw: Vec<f64> = net
            .links()
            .filter(|c| c.label.starts_with("cw"))
            .map(|c| loads.lambda[c.id.idx()])
            .collect();
        assert_eq!(cw.len(), 16);
        for &l in &cw {
            assert!((l - cw[0]).abs() < 1e-12, "cw loads must be equal: {cw:?}");
        }
        assert!(cw[0] > 0.0);
    }

    #[test]
    fn total_injection_rate_matches_generation() {
        let topo = Quarc::new(16).unwrap();
        let wl = workload(&topo, 0.01, 0.0);
        let loads = ChannelLoads::build(&topo, &wl, &ModelOptions::default());
        let net = topo.network();
        // Sum of injection-channel rates = per-node unicast rate × N.
        let inj_total: f64 = net
            .channels()
            .iter()
            .filter(|c| c.kind == ChannelKind::Injection)
            .map(|c| loads.lambda[c.id.idx()])
            .sum();
        assert!((inj_total - 0.01 * 16.0).abs() < 1e-9);
    }

    #[test]
    fn ejection_rates_match_absorption() {
        // With unicast-only uniform traffic every node absorbs λ_g worth of
        // traffic spread over its ejection channels.
        let topo = Quarc::new(16).unwrap();
        let wl = workload(&topo, 0.008, 0.0);
        let loads = ChannelLoads::build(&topo, &wl, &ModelOptions::default());
        let net = topo.network();
        for node in 0..16u32 {
            let total: f64 = net
                .channels()
                .iter()
                .filter(|c| c.kind == ChannelKind::Ejection && c.to == NodeId(node))
                .map(|c| loads.lambda[c.id.idx()])
                .sum();
            assert!((total - 0.008).abs() < 1e-9, "node {node} absorbs {total}");
        }
    }

    #[test]
    fn multicast_streams_add_operation_rate_per_port() {
        let topo = Quarc::new(16).unwrap();
        let wl = Workload::new(32, 0.01, 1.0, DestinationSets::broadcast(&topo)).unwrap();
        let loads = ChannelLoads::build(&topo, &wl, &ModelOptions::default());
        let net = topo.network();
        // Broadcast from every node at rate 0.01: every injection channel
        // carries exactly the operation rate.
        for c in net.channels() {
            if c.kind == ChannelKind::Injection {
                assert!(
                    (loads.lambda[c.id.idx()] - 0.01).abs() < 1e-12,
                    "injection {c:?} rate {}",
                    loads.lambda[c.id.idx()]
                );
            }
        }
    }

    #[test]
    fn transitions_conserve_flow() {
        // For every non-terminal channel the successor rates sum to λ_i
        // (every message continues to exactly one next channel).
        let topo = Quarc::new(16).unwrap();
        let wl = workload(&topo, 0.01, 0.1);
        let loads = ChannelLoads::build(&topo, &wl, &ModelOptions::default());
        let net = topo.network();
        for c in net.channels() {
            if c.kind == ChannelKind::Ejection {
                assert!(loads.successors[c.id.idx()].is_empty());
                continue;
            }
            let li = loads.lambda[c.id.idx()];
            let out: f64 = loads.successors[c.id.idx()].iter().map(|(_, r)| r).sum();
            assert!(
                (li - out).abs() < 1e-9,
                "flow conservation at {c:?}: in {li}, out {out}"
            );
        }
    }

    #[test]
    fn p_next_sums_to_one_on_loaded_channels() {
        let topo = Quarc::new(16).unwrap();
        let wl = workload(&topo, 0.01, 0.05);
        let loads = ChannelLoads::build(&topo, &wl, &ModelOptions::default());
        for (i, succ) in loads.successors.iter().enumerate() {
            if succ.is_empty() || loads.lambda[i] == 0.0 {
                continue;
            }
            let p: f64 = succ
                .iter()
                .map(|(j, _)| loads.p_next(ChannelId(i as u32), *j))
                .sum();
            assert!((p - 1.0).abs() < 1e-9, "channel {i} P sums to {p}");
        }
    }

    #[test]
    fn clone_ejection_load_adds_rate() {
        let topo = Quarc::new(16).unwrap();
        let wl = Workload::new(32, 0.01, 1.0, DestinationSets::broadcast(&topo)).unwrap();
        let base = ChannelLoads::build(&topo, &wl, &ModelOptions::default());
        let with = ChannelLoads::build(
            &topo,
            &wl,
            &ModelOptions {
                clone_ejection_load: true,
                ..Default::default()
            },
        );
        let sum_base: f64 = base.lambda.iter().sum();
        let sum_with: f64 = with.lambda.iter().sum();
        assert!(sum_with > sum_base, "clone load must add ejection rate");
    }
}
