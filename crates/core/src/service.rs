//! The per-channel service-time recursion (Eq. 6) and its M/G/1 waiting
//! times (Eq. 3–5).
//!
//! The service time of a wormhole channel is the time it remains allocated
//! to one message: the downstream waiting, the downstream service and one
//! cycle of header transfer, averaged over the possible continuations:
//!
//! ```text
//! x_i = Σ_j P_{i→j} · ((1 − corr_{ij})·W_j + x_j + 1)        (Eq. 6)
//! x_ejection = msg                                            (§2.1)
//! W_j = PK(λ_j, x_j, σ_j = x_j − msg)                         (Eq. 3–5)
//! ```
//!
//! On ring-based topologies the successor relation is cyclic, so the system
//! is solved as a damped fixed point. Divergence of the iteration (some
//! `ρ_j → 1`) is exactly the saturation horizon of the model and is
//! reported as such.

use crate::options::ModelOptions;
use crate::rates::ChannelLoads;
use noc_queueing::fixed_point::{FixedPointError, FixedPointOutcome};
use noc_queueing::mg1::MG1;
use noc_topology::{ChannelId, ChannelKind, Topology};

/// Converged per-channel service times and waiting times.
#[derive(Clone, Debug)]
pub struct ServiceSolution {
    /// Mean service time `x_j` per channel.
    pub service: Vec<f64>,
    /// Mean M/G/1 waiting time `W_j` per channel.
    pub waiting: Vec<f64>,
    /// Utilisation `ρ_j` per channel.
    pub rho: Vec<f64>,
    /// Fixed-point iterations used.
    pub iterations: usize,
}

/// Saturation: the recursion diverged because some channel load reached
/// its stability limit.
#[derive(Clone, Debug, PartialEq)]
pub struct Saturated {
    /// The most loaded channel when divergence was detected.
    pub bottleneck: ChannelId,
    /// Its utilisation estimate (lower bound) at that point.
    pub rho: f64,
}

impl std::fmt::Display for Saturated {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model saturated: channel {:?} at utilisation {:.3}",
            self.bottleneck, self.rho
        )
    }
}

impl std::error::Error for Saturated {}

/// Solve the service recursion for a routed workload.
pub fn solve(
    topo: &dyn Topology,
    loads: &ChannelLoads,
    msg_len: f64,
    opts: &ModelOptions,
) -> Result<ServiceSolution, Saturated> {
    let net = topo.network();
    let nc = net.num_channels();

    // Quick screen: a channel whose raw rate already exceeds 1/msg can
    // never be stable (its service time is at least the drain time).
    if let Some((idx, &l)) = loads
        .lambda
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
    {
        if l * msg_len >= 1.0 {
            return Err(Saturated {
                bottleneck: ChannelId(idx as u32),
                rho: l * msg_len,
            });
        }
    }

    let is_terminal: Vec<bool> = net
        .channels()
        .iter()
        .map(|c| c.kind == ChannelKind::Ejection || loads.successors[c.id.idx()].is_empty())
        .collect();

    let waiting_of = |lambda: f64, x: f64| -> f64 {
        if lambda <= 0.0 {
            return 0.0;
        }
        MG1::with_paper_sigma(lambda, x, msg_len).waiting(opts.formula)
    };

    let x0 = vec![msg_len; nc];
    let result = opts.fixed_point.solve(x0, |x, out| {
        for i in 0..nc {
            if is_terminal[i] {
                out[i] = msg_len;
                continue;
            }
            let li = loads.lambda[i];
            if li <= 0.0 {
                // Unloaded channel: service defaults to the drain time.
                out[i] = msg_len;
                continue;
            }
            let mut acc = 0.0;
            for &(j, rate) in &loads.successors[i] {
                let j = j.idx();
                let p = rate / li;
                let lj = loads.lambda[j];
                let wj = waiting_of(lj, x[j]);
                let frac = if lj > 0.0 { (rate / lj).min(1.0) } else { 0.0 };
                let corr = opts.correction.factor(frac, p);
                acc += p * (corr * wj + x[j] + 1.0);
            }
            out[i] = acc;
        }
    });

    match result {
        Ok((service, outcome)) => {
            let iterations = match outcome {
                FixedPointOutcome::Converged { iterations } => iterations,
                FixedPointOutcome::MaxIterations { residual } => {
                    // Treat an unconverged residual as saturation: the
                    // recursion only stalls when some queue is near its
                    // stability limit.
                    if residual > 1e-3 {
                        let (idx, rho) = max_rho(&loads.lambda, &service);
                        return Err(Saturated {
                            bottleneck: ChannelId(idx as u32),
                            rho,
                        });
                    }
                    opts.fixed_point.max_iterations
                }
            };
            let waiting: Vec<f64> = (0..nc)
                .map(|i| waiting_of(loads.lambda[i], service[i]))
                .collect();
            // A finite fixed point with an unstable queue is still
            // saturation (W would be infinite).
            let (idx, rho) = max_rho(&loads.lambda, &service);
            if rho >= 1.0 || waiting.iter().any(|w| !w.is_finite()) {
                return Err(Saturated {
                    bottleneck: ChannelId(idx as u32),
                    rho,
                });
            }
            let rho_v = (0..nc).map(|i| loads.lambda[i] * service[i]).collect();
            Ok(ServiceSolution {
                service,
                waiting,
                rho: rho_v,
                iterations,
            })
        }
        Err(FixedPointError::Diverged { .. }) => {
            // Identify the bottleneck from the raw loads (the diverging
            // component's own rho may be distorted; report the largest).
            let (idx, rho) = max_rho(&loads.lambda, &vec![msg_len; nc]);
            Err(Saturated {
                bottleneck: ChannelId(idx as u32),
                rho,
            })
        }
    }
}

fn max_rho(lambda: &[f64], service: &[f64]) -> (usize, f64) {
    let mut best = (0usize, 0.0f64);
    for i in 0..lambda.len() {
        let r = lambda[i] * service[i];
        if r > best.1 {
            best = (i, r);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::Quarc;
    use noc_workloads::{DestinationSets, Workload};

    fn setup(rate: f64, alpha: f64) -> (Quarc, Workload) {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        let wl = Workload::new(32, rate, alpha, sets).unwrap();
        (topo, wl)
    }

    #[test]
    fn zero_load_service_is_drain_time_plus_pipeline() {
        let (topo, wl) = setup(0.0, 0.0);
        let opts = ModelOptions::default();
        let loads = ChannelLoads::build(&topo, &wl, &opts);
        let sol = solve(&topo, &loads, 32.0, &opts).unwrap();
        // All channels unloaded: service defaults to msg, waits to zero.
        assert!(sol.waiting.iter().all(|&w| w == 0.0));
        assert!(sol.rho.iter().all(|&r| r == 0.0));
    }

    #[test]
    fn light_load_converges_with_small_waits() {
        let (topo, wl) = setup(0.002, 0.05);
        let opts = ModelOptions::default();
        let loads = ChannelLoads::build(&topo, &wl, &opts);
        let sol = solve(&topo, &loads, 32.0, &opts).unwrap();
        assert!(sol.iterations > 0);
        // Waits exist but are small at 0.002 msgs/node/cycle.
        let max_w = sol.waiting.iter().copied().fold(0.0, f64::max);
        assert!(max_w > 0.0, "some channel must have queueing");
        assert!(
            max_w < 32.0,
            "waits should be below one service time, got {max_w}"
        );
        // Service times at loaded link channels exceed the drain time
        // (downstream hop cost) but stay bounded.
        let net = topo.network();
        for c in net.links() {
            let x = sol.service[c.id.idx()];
            assert!(x >= 32.0, "link {c:?} service {x} must be >= msg");
            assert!(x < 45.0, "link {c:?} service {x} unexpectedly large");
        }
    }

    #[test]
    fn service_grows_with_load() {
        let opts = ModelOptions::default();
        let mut prev_max = 0.0;
        for rate in [0.001, 0.004, 0.008] {
            let (topo, wl) = setup(rate, 0.05);
            let loads = ChannelLoads::build(&topo, &wl, &opts);
            let sol = solve(&topo, &loads, 32.0, &opts).unwrap();
            let max_x = sol.service.iter().copied().fold(0.0, f64::max);
            assert!(max_x > prev_max, "service must grow with load");
            prev_max = max_x;
        }
    }

    #[test]
    fn saturation_detected_at_high_rate() {
        let (topo, wl) = setup(0.2, 0.05);
        let opts = ModelOptions::default();
        let loads = ChannelLoads::build(&topo, &wl, &opts);
        let err = solve(&topo, &loads, 32.0, &opts).unwrap_err();
        assert!(
            err.rho >= 1.0,
            "reported rho {} must flag overload",
            err.rho
        );
    }

    #[test]
    fn ejection_channels_serve_in_msg_cycles() {
        let (topo, wl) = setup(0.004, 0.1);
        let opts = ModelOptions::default();
        let loads = ChannelLoads::build(&topo, &wl, &opts);
        let sol = solve(&topo, &loads, 32.0, &opts).unwrap();
        let net = topo.network();
        for c in net.channels() {
            if c.kind == ChannelKind::Ejection {
                assert_eq!(sol.service[c.id.idx()], 32.0);
            }
        }
    }
}
