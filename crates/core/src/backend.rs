//! Pluggable analytical backends behind the [`ModelBackend`] trait.
//!
//! The paper's M/G/1 fixed-point model ([`MgOneBackend`]) predicts *mean*
//! latencies but is only sound for Poisson sources and the path-based /
//! dual-path stream structure; the network-calculus backend
//! ([`NetworkCalculusBackend`], [`crate::calculus`]) produces worst-case
//! *bounds* for every traffic process and routing scheme. The experiment
//! layer selects one via the serializable [`BackendSpec`] and, crucially,
//! anchors saturation-relative sweeps on a backend that is actually
//! applicable to the prototype workload instead of silently trusting the
//! M/G/1 estimate outside its domain.
//!
//! ```text
//!                 ┌──────────────────────────────┐
//!   BackendSpec ──│ trait ModelBackend           │
//!    (serde)      │  code / applicable           │
//!                 │  evaluate -> Prediction      │
//!                 │  max_sustainable_rate        │
//!                 └──────┬───────────────┬───────┘
//!                        │               │
//!                 MgOneBackend   NetworkCalculusBackend
//!                 (mean, Eq.3–16) (worst-case (σ,ρ) bounds)
//! ```

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::model::{AnalyticModel, ModelError, Prediction};
use crate::options::ModelOptions;
use crate::saturation::bisect_max_rate;
use noc_topology::Topology;
use noc_workloads::Workload;

pub use crate::calculus::NetworkCalculusBackend;

/// An analytical model of the network: given a workload on a topology it
/// predicts per-point latencies and, by bisection, the largest sustainable
/// generation rate.
///
/// [`MgOneBackend`] predictions are *means*; [`NetworkCalculusBackend`]
/// predictions are *worst-case bounds*. Both fill the same [`Prediction`]
/// shape so the experiment layer can overlay either against simulation.
pub trait ModelBackend: Sync {
    /// Short machine-readable identifier (`"mg1"`, `"nc"`).
    fn code(&self) -> &'static str;

    /// Whether this backend's assumptions hold for the topology/workload
    /// pair. An inapplicable backend may still evaluate (the number is
    /// then an uncontrolled extrapolation — or, for implicit topologies,
    /// a typed [`ModelError::UnsupportedTopology`]); sweep anchoring
    /// refuses to use it.
    fn applicable(&self, topo: &dyn Topology, wl: &Workload) -> bool;

    /// Evaluate the model at the workload's generation rate.
    fn evaluate(
        &self,
        topo: &dyn Topology,
        wl: &Workload,
        opts: &ModelOptions,
    ) -> Result<Prediction, ModelError>;

    /// The largest generation rate this backend considers sustainable on
    /// `topo`, found by exponential search + bisection over
    /// [`evaluate`](Self::evaluate) outcomes. `proto` supplies everything
    /// but the rate (message length, multicast fraction, destination
    /// sets, traffic shape, routing scheme); `tol` is the relative
    /// precision of the bisection.
    fn max_sustainable_rate(
        &self,
        topo: &dyn Topology,
        proto: &Workload,
        opts: &ModelOptions,
        tol: f64,
    ) -> f64 {
        bisect_max_rate(tol, |rate| {
            if rate <= 0.0 {
                return true;
            }
            let Ok(wl) = proto.at_rate(rate) else {
                return false;
            };
            self.evaluate(topo, &wl, opts).is_ok()
        })
    }
}

/// The paper's M/G/1 mean-value model (Eq. 3–16) as a backend: thin
/// adapter over [`AnalyticModel`].
#[derive(Clone, Copy, Debug, Default)]
pub struct MgOneBackend;

impl ModelBackend for MgOneBackend {
    fn code(&self) -> &'static str {
        "mg1"
    }

    fn applicable(&self, topo: &dyn Topology, wl: &Workload) -> bool {
        // The derivation assumes memoryless arrivals and asynchronous
        // per-port multicast streams — exactly the Runner's historical
        // `model_applicable` stamp — plus a materialized channel table
        // (the fixed point iterates dense per-channel load vectors, which
        // is exactly what implicit scale topologies avoid building).
        !topo.network().is_implicit() && wl.traffic.is_poisson() && wl.routing.model_applicable()
    }

    fn evaluate(
        &self,
        topo: &dyn Topology,
        wl: &Workload,
        opts: &ModelOptions,
    ) -> Result<Prediction, ModelError> {
        AnalyticModel::new(topo, wl, *opts).evaluate()
    }
}

impl ModelBackend for NetworkCalculusBackend {
    fn code(&self) -> &'static str {
        "nc"
    }

    fn applicable(&self, topo: &dyn Topology, _wl: &Workload) -> bool {
        // Envelopes exist for every TrafficSpec and the stream walks for
        // every RoutingSpec; the only domain boundary (non-concurrent
        // multicast hardware) is shared with M/G/1 and reported as a
        // typed evaluate error, matching that backend's contract. The
        // per-channel (σ,ρ) accumulation does, however, need the dense
        // channel table, so implicit topologies are out of scope.
        !topo.network().is_implicit()
    }

    fn evaluate(
        &self,
        topo: &dyn Topology,
        wl: &Workload,
        opts: &ModelOptions,
    ) -> Result<Prediction, ModelError> {
        self.evaluate_bounds(topo, wl, opts)
    }
}

/// Serializable selector for a [`ModelBackend`], carried by
/// [`ModelOptions`]. The default keeps the paper's
/// M/G/1 model and thus every historical scenario/golden byte-identical.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BackendSpec {
    /// The paper's M/G/1 fixed-point mean-value model ([`MgOneBackend`]).
    #[default]
    MgOne,
    /// Worst-case network-calculus bounds ([`NetworkCalculusBackend`]).
    NetworkCalculus,
}

/// Every backend, in selector order — for ablation sweeps over backends.
pub const ALL_BACKENDS: [BackendSpec; 2] = [BackendSpec::MgOne, BackendSpec::NetworkCalculus];

impl BackendSpec {
    /// The backend this selector names.
    pub fn backend(self) -> &'static dyn ModelBackend {
        match self {
            BackendSpec::MgOne => &MgOneBackend,
            BackendSpec::NetworkCalculus => &NetworkCalculusBackend,
        }
    }

    /// Short machine-readable identifier (`"mg1"`, `"nc"`).
    pub fn code(self) -> &'static str {
        self.backend().code()
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::{Quarc, RoutingSpec};
    use noc_workloads::{DestinationSets, TrafficSpec};

    fn workload(alpha: f64) -> (Quarc, Workload) {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 7);
        let wl = Workload::new(32, 0.002, alpha, sets).unwrap();
        (topo, wl)
    }

    #[test]
    fn applicability_matrix() {
        let (topo, wl) = workload(0.1);
        assert!(MgOneBackend.applicable(&topo, &wl));
        assert!(NetworkCalculusBackend.applicable(&topo, &wl));
        let multipath = wl.clone().with_routing(RoutingSpec::Multipath);
        assert!(!MgOneBackend.applicable(&topo, &multipath));
        assert!(NetworkCalculusBackend.applicable(&topo, &multipath));
        let bursty = wl.with_traffic(TrafficSpec::OnOff {
            burst_len: 8.0,
            peak_rate: 0.2,
        });
        assert!(!MgOneBackend.applicable(&topo, &bursty));
        assert!(NetworkCalculusBackend.applicable(&topo, &bursty));
    }

    #[test]
    fn no_backend_is_applicable_to_implicit_topologies() {
        use noc_topology::Min;
        let implicit = Min::new(2, 4).unwrap();
        let sets = DestinationSets::random(&implicit, 3, 7);
        let wl = Workload::new(32, 0.002, 0.1, sets).unwrap();
        assert!(!MgOneBackend.applicable(&implicit, &wl));
        assert!(!NetworkCalculusBackend.applicable(&implicit, &wl));
        // Applicability keys on the storage, not the family: the same
        // network force-materialized is back in scope for both backends.
        let dense = Min::materialized(2, 4).unwrap();
        assert!(MgOneBackend.applicable(&dense, &wl));
        assert!(NetworkCalculusBackend.applicable(&dense, &wl));
    }

    #[test]
    fn mg1_backend_matches_the_direct_model() {
        let (topo, wl) = workload(0.1);
        let opts = ModelOptions::default();
        let via_backend = MgOneBackend.evaluate(&topo, &wl, &opts).unwrap();
        let direct = AnalyticModel::new(&topo, &wl, opts).evaluate().unwrap();
        assert_eq!(via_backend.unicast_latency, direct.unicast_latency);
        assert_eq!(via_backend.multicast_latency, direct.multicast_latency);
    }

    #[test]
    fn backend_trait_saturation_matches_the_free_function() {
        let (topo, wl) = workload(0.1);
        let proto = wl.at_rate(1e-5).unwrap();
        let opts = ModelOptions::default();
        let via_trait = MgOneBackend.max_sustainable_rate(&topo, &proto, &opts, 0.01);
        let via_free = crate::saturation::max_sustainable_rate(&topo, &proto, opts, 0.01);
        assert_eq!(via_trait, via_free);
    }

    #[test]
    fn spec_resolves_codes_and_display() {
        assert_eq!(BackendSpec::default(), BackendSpec::MgOne);
        assert_eq!(BackendSpec::MgOne.code(), "mg1");
        assert_eq!(BackendSpec::NetworkCalculus.code(), "nc");
        assert_eq!(format!("{}", BackendSpec::NetworkCalculus), "nc");
        for spec in ALL_BACKENDS {
            assert_eq!(spec.backend().code(), spec.code());
        }
    }

    #[test]
    fn spec_round_trips_through_serde() {
        for spec in ALL_BACKENDS {
            let json = serde::json::to_string_pretty(&spec);
            let back: BackendSpec = serde::json::from_str(&json).expect("round trip parses");
            assert_eq!(back, spec);
        }
    }
}
