//! Multicast latency (paper §2.2, Eq. 8–16).
//!
//! A multicast from node `x_j` leaves through its `m` injection ports as
//! independent wormhole streams. Per port `c`, the total header waiting
//! time along the stream's path, `Ω_{j,c} = Σ_l w_l`, parameterises an
//! exponential random variable with rate `µ_{j,c} = 1/Ω_{j,c}` (Eq. 8).
//! Because the streams are asynchronous, the multicast waiting time is the
//! expected time of the **last** completion — the expected maximum of the
//! `m` exponentials (Eq. 12–13) — and
//!
//! ```text
//! L_j = W_j + msg + D_j,    D_j = max_c D_{j,c}        (Eq. 14–15)
//! L   = (1/N) Σ_j L_j                                  (Eq. 16)
//! ```
//!
//! A port whose stream experiences zero waiting contributes an
//! instantly-firing variable and drops out of the maximum. The paper also
//! discusses (and rejects) the "largest sub-network wins" heuristic; it is
//! provided as [`largest_subset_latency`] for the ablation bench.

use crate::options::ModelOptions;
use crate::rates::ChannelLoads;
use crate::service::ServiceSolution;
use crate::unicast::path_waiting_sum;
use noc_queueing::expmax::expected_max_exponentials;
use noc_queueing::MaxOfExponentials;
use noc_topology::{NodeId, RoutingSpec, Topology};

/// Multicast prediction for one source node.
#[derive(Clone, Debug)]
pub struct NodeMulticast {
    /// The source node.
    pub node: NodeId,
    /// Per-port total waiting times `Ω_{j,c}`, in stream order.
    pub port_waits: Vec<f64>,
    /// Expected waiting of the last-finishing stream (Eq. 13).
    pub waiting: f64,
    /// `D_j = max_c D_{j,c}` in channel traversals minus one (matching the
    /// simulator's zero-load timing).
    pub max_hops: usize,
    /// `L_j = W_j + msg + D_j` (Eq. 14).
    pub latency: f64,
}

impl NodeMulticast {
    /// The full distribution of this node's multicast waiting time —
    /// the max of the per-port exponentials (extension: the paper derives
    /// only the expectation, Eq. 13).
    pub fn waiting_distribution(&self) -> MaxOfExponentials {
        MaxOfExponentials::from_waits(&self.port_waits)
    }

    /// Latency quantile `q`: the deterministic part `msg + D_j` plus the
    /// waiting-time quantile.
    pub fn latency_quantile(&self, q: f64) -> f64 {
        (self.latency - self.waiting) + self.waiting_distribution().quantile(q)
    }
}

/// Evaluate the multicast latency of every node with a non-empty
/// destination set; returns per-node results (Eq. 14) and their average
/// (Eq. 16). Streams — and hence the per-port waiting sums `Ω_{j,c}` —
/// are constructed by `routing`; under schemes whose streams are not
/// asynchronous per-port wormholes (`RoutingSpec::UnicastTree`) the
/// numbers are still computed mechanically but lie outside the model's
/// domain (the experiment layer stamps `model_applicable = false`).
pub fn evaluate<'s>(
    topo: &dyn Topology,
    routing: RoutingSpec,
    msg_len: f64,
    sets: &dyn Fn(NodeId) -> &'s [NodeId],
    loads: &ChannelLoads,
    sol: &ServiceSolution,
    opts: &ModelOptions,
) -> (Vec<NodeMulticast>, f64) {
    let n = topo.num_nodes();
    let mut per_node = Vec::with_capacity(n);
    let mut total = 0.0;
    for j in 0..n {
        let node = NodeId(j as u32);
        let set = sets(node);
        if set.is_empty() {
            continue;
        }
        let streams = routing.streams(topo, node, set);
        debug_assert!(!streams.is_empty());
        let mut port_waits = Vec::with_capacity(streams.len());
        let mut max_hops = 0usize;
        for st in &streams {
            port_waits.push(path_waiting_sum(&st.path, loads, sol, opts));
            max_hops = max_hops.max(st.path.hop_count());
        }
        let waiting = expected_last_completion(&port_waits);
        let latency = waiting + msg_len + max_hops as f64;
        total += latency;
        per_node.push(NodeMulticast {
            node,
            port_waits,
            waiting,
            max_hops,
            latency,
        });
    }
    let avg = if per_node.is_empty() {
        f64::NAN
    } else {
        total / per_node.len() as f64
    };
    (per_node, avg)
}

/// Expected waiting of the last-finishing stream: `E[max]` of exponentials
/// with rates `1/Ω_c` (Eq. 8 + Eq. 13). Streams with `Ω = 0` fire
/// instantly and are dropped.
pub fn expected_last_completion(port_waits: &[f64]) -> f64 {
    let rates: Vec<f64> = port_waits
        .iter()
        .filter(|&&w| w > 0.0)
        .map(|&w| 1.0 / w)
        .collect();
    expected_max_exponentials(&rates)
}

/// The "largest sub-network" heuristic the paper argues against (§2):
/// take the latency of the port with the largest `Ω + D` instead of the
/// expected maximum. Used by the ablation bench to show the differences.
pub fn largest_subset_latency<'s>(
    topo: &dyn Topology,
    routing: RoutingSpec,
    msg_len: f64,
    sets: &dyn Fn(NodeId) -> &'s [NodeId],
    loads: &ChannelLoads,
    sol: &ServiceSolution,
    opts: &ModelOptions,
) -> f64 {
    let n = topo.num_nodes();
    let mut total = 0.0;
    let mut count = 0usize;
    for j in 0..n {
        let node = NodeId(j as u32);
        let set = sets(node);
        if set.is_empty() {
            continue;
        }
        let streams = routing.streams(topo, node, set);
        // "Largest" sub-network: the stream covering the most targets,
        // ties broken by hop count.
        let candidate = streams
            .iter()
            .max_by_key(|st| (st.targets.len(), st.path.hop_count()))
            .expect("non-empty stream set");
        let w = path_waiting_sum(&candidate.path, loads, sol, opts);
        total += w + msg_len + candidate.path.hop_count() as f64;
        count += 1;
    }
    if count == 0 {
        f64::NAN
    } else {
        total / count as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service;
    use noc_topology::Quarc;
    use noc_workloads::{DestinationSets, Workload};

    fn fixture(rate: f64, alpha: f64, sets: DestinationSets) -> (Quarc, Workload) {
        let topo = Quarc::new(16).unwrap();
        let wl = Workload::new(32, rate, alpha, sets).unwrap();
        (topo, wl)
    }

    #[test]
    fn zero_load_broadcast_latency_is_msg_plus_max_hops() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::broadcast(&topo);
        let (topo, wl) = fixture(0.0, 0.0, sets);
        let opts = ModelOptions::default();
        let loads = ChannelLoads::build(&topo, &wl, &opts);
        let sol = service::solve(&topo, &loads, 32.0, &opts).unwrap();
        let (per_node, avg) = evaluate(
            &topo,
            wl.routing,
            32.0,
            &|n| wl.multicast_set(n),
            &loads,
            &sol,
            &opts,
        );
        assert_eq!(per_node.len(), 16);
        // All broadcast streams are k = 4 links → hop_count = 5.
        for nm in &per_node {
            assert_eq!(nm.max_hops, 5);
            assert_eq!(nm.waiting, 0.0);
            assert!((nm.latency - 37.0).abs() < 1e-9);
        }
        assert!((avg - 37.0).abs() < 1e-9);
    }

    #[test]
    fn expected_last_completion_known_values() {
        // Two equal waits Ω: E[max of two iid Exp(1/Ω)] = 1.5 Ω.
        assert!((expected_last_completion(&[10.0, 10.0]) - 15.0).abs() < 1e-9);
        // Single stream: the wait itself.
        assert!((expected_last_completion(&[7.0]) - 7.0).abs() < 1e-9);
        // Zero-wait streams drop out.
        assert!((expected_last_completion(&[0.0, 5.0]) - 5.0).abs() < 1e-9);
        assert_eq!(expected_last_completion(&[0.0, 0.0]), 0.0);
    }

    #[test]
    fn multicast_waiting_exceeds_mean_port_wait_under_load() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 6, 3);
        let (topo, wl) = fixture(0.006, 0.1, sets);
        let opts = ModelOptions::default();
        let loads = ChannelLoads::build(&topo, &wl, &opts);
        let sol = service::solve(&topo, &loads, 32.0, &opts).unwrap();
        let (per_node, avg) = evaluate(
            &topo,
            wl.routing,
            32.0,
            &|n| wl.multicast_set(n),
            &loads,
            &sol,
            &opts,
        );
        assert!(avg.is_finite() && avg > 32.0);
        for nm in &per_node {
            if nm.port_waits.len() >= 2 {
                let mean_port = nm.port_waits.iter().sum::<f64>() / nm.port_waits.len() as f64;
                assert!(
                    nm.waiting >= mean_port - 1e-9,
                    "E[max] must dominate the mean port wait"
                );
                let max_port = nm.port_waits.iter().copied().fold(0.0, f64::max);
                assert!(
                    nm.waiting >= max_port - 1e-9,
                    "E[max] must dominate each port's own expected wait"
                );
            }
        }
    }

    #[test]
    fn largest_subset_heuristic_underestimates_the_asynchronous_max() {
        // The paper's §2 argument: the largest sub-network's latency is not
        // a reliable multicast latency — the expected maximum over all
        // ports dominates it.
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 8, 9);
        let (topo, wl) = fixture(0.005, 0.1, sets);
        let opts = ModelOptions::default();
        let loads = ChannelLoads::build(&topo, &wl, &opts);
        let sol = service::solve(&topo, &loads, 32.0, &opts).unwrap();
        let (_, full) = evaluate(
            &topo,
            wl.routing,
            32.0,
            &|n| wl.multicast_set(n),
            &loads,
            &sol,
            &opts,
        );
        let heuristic = largest_subset_latency(
            &topo,
            wl.routing,
            32.0,
            &|n| wl.multicast_set(n),
            &loads,
            &sol,
            &opts,
        );
        assert!(
            full > heuristic - 1e-9,
            "E[max] model ({full}) should exceed the largest-subset heuristic ({heuristic})"
        );
    }

    #[test]
    fn latency_quantiles_bracket_the_mean() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 6, 3);
        let (topo, wl) = fixture(0.005, 0.1, sets);
        let opts = ModelOptions::default();
        let loads = ChannelLoads::build(&topo, &wl, &opts);
        let sol = service::solve(&topo, &loads, 32.0, &opts).unwrap();
        let (per_node, _) = evaluate(
            &topo,
            wl.routing,
            32.0,
            &|n| wl.multicast_set(n),
            &loads,
            &sol,
            &opts,
        );
        for nm in &per_node {
            let p10 = nm.latency_quantile(0.10);
            let p95 = nm.latency_quantile(0.95);
            assert!(p10 < nm.latency, "p10 {p10} below the mean {}", nm.latency);
            assert!(p95 > nm.latency, "p95 {p95} above the mean {}", nm.latency);
            // Deterministic part is a hard lower bound.
            assert!(p10 >= nm.latency - nm.waiting - 1e-9);
            // The distribution's mean equals the Eq. 13 expectation.
            let d = nm.waiting_distribution();
            assert!((d.mean() - nm.waiting).abs() < 1e-9);
        }
    }

    #[test]
    fn empty_sets_are_skipped() {
        let mut raw = vec![Vec::new(); 16];
        raw[3] = vec![NodeId(5), NodeId(9)];
        let sets = DestinationSets::explicit(raw);
        let (topo, wl) = fixture(0.002, 0.0, sets);
        let opts = ModelOptions::default();
        let loads = ChannelLoads::build(&topo, &wl, &opts);
        let sol = service::solve(&topo, &loads, 32.0, &opts).unwrap();
        let (per_node, avg) = evaluate(
            &topo,
            wl.routing,
            32.0,
            &|n| wl.multicast_set(n),
            &loads,
            &sol,
            &opts,
        );
        assert_eq!(per_node.len(), 1);
        assert_eq!(per_node[0].node, NodeId(3));
        assert!(avg.is_finite());
    }
}
