//! Unicast latency (paper §2.1, Eq. 7).
//!
//! With the per-channel waits `W_l` solved, the latency of a specific
//! source–destination pair expands the service recursion along its route:
//!
//! ```text
//! L(s, d) = Σ_{l ∈ path} w_l + msg + D
//! ```
//!
//! where `w_l` is the corrected waiting time of the header at channel `l`
//! (the correction discounts the share of `l`'s traffic contributed by the
//! message's own previous channel) and `D = path.hop_count()` reproduces
//! the simulator's zero-load timing exactly.

use crate::options::ModelOptions;
use crate::rates::ChannelLoads;
use crate::service::ServiceSolution;
use noc_topology::{NodeId, Path, Topology};
use noc_workloads::UnicastPattern;

/// Total corrected header waiting time along a path (the `Σ_l w_l` of
/// Eq. 7 and the `Ω_{j,c}` of Eq. 8).
pub fn path_waiting_sum(
    path: &Path,
    loads: &ChannelLoads,
    sol: &ServiceSolution,
    opts: &ModelOptions,
) -> f64 {
    let mut total = 0.0;
    // Injection channel: the message queues behind its own node's earlier
    // messages — no predecessor, full wait.
    total += sol.waiting[path.hops[0].channel.idx()];
    for (prev, cur) in path.transitions() {
        let lj = loads.lambda[cur.idx()];
        let w = sol.waiting[cur.idx()];
        if w == 0.0 {
            continue;
        }
        let rate = loads.transition(prev, cur);
        let frac = if lj > 0.0 { (rate / lj).min(1.0) } else { 0.0 };
        let p = loads.p_next(prev, cur);
        total += opts.correction.factor(frac, p) * w;
    }
    total
}

/// Mean latency of one source–destination pair (Eq. 7).
pub fn pair_latency(
    topo: &dyn Topology,
    src: NodeId,
    dst: NodeId,
    msg_len: f64,
    loads: &ChannelLoads,
    sol: &ServiceSolution,
    opts: &ModelOptions,
) -> f64 {
    let path = topo.unicast_path(src, dst);
    path_waiting_sum(&path, loads, sol, opts) + msg_len + path.hop_count() as f64
}

/// Network-average unicast latency (§2.1): sources uniform, destinations
/// weighted by the workload's unicast pattern (uniform weights reproduce
/// the paper's plain average over ordered pairs).
pub fn average_latency(
    topo: &dyn Topology,
    msg_len: f64,
    pattern: &UnicastPattern,
    loads: &ChannelLoads,
    sol: &ServiceSolution,
    opts: &ModelOptions,
) -> f64 {
    let n = topo.num_nodes();
    let mut total = 0.0;
    for s in 0..n {
        for d in 0..n {
            if s == d {
                continue;
            }
            let (s, d) = (NodeId(s as u32), NodeId(d as u32));
            let w = pattern.weight(n, s, d);
            if w <= 0.0 {
                continue;
            }
            total += w * pair_latency(topo, s, d, msg_len, loads, sol, opts);
        }
    }
    total / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service;
    use noc_topology::Quarc;
    use noc_workloads::{DestinationSets, Workload};

    fn solved(rate: f64) -> (Quarc, Workload, ChannelLoads, ServiceSolution, ModelOptions) {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        let wl = Workload::new(32, rate, 0.0, sets).unwrap();
        let opts = ModelOptions::default();
        let loads = ChannelLoads::build(&topo, &wl, &opts);
        let sol = service::solve(&topo, &loads, 32.0, &opts).unwrap();
        (topo, wl, loads, sol, opts)
    }

    #[test]
    fn zero_load_latency_is_msg_plus_hops() {
        let (topo, _wl, loads, sol, opts) = solved(0.0);
        for (s, d) in [(0u32, 1u32), (0, 4), (0, 8), (3, 11), (15, 2)] {
            let lat = pair_latency(&topo, NodeId(s), NodeId(d), 32.0, &loads, &sol, &opts);
            let path = topo.unicast_path(NodeId(s), NodeId(d));
            let expected = 32.0 + path.hop_count() as f64;
            assert!(
                (lat - expected).abs() < 1e-9,
                "{s}->{d}: {lat} vs {expected}"
            );
        }
    }

    #[test]
    fn average_latency_increases_with_load() {
        let mut prev = 0.0;
        // 0.009 is just below the model's saturation horizon for this
        // configuration (N=16, M=32; see the saturation tests).
        for rate in [0.0, 0.002, 0.006, 0.009] {
            let (topo, _wl, loads, sol, opts) = solved(rate);
            let avg = average_latency(&topo, 32.0, &UnicastPattern::Uniform, &loads, &sol, &opts);
            assert!(
                avg > prev,
                "latency must increase with load ({rate}: {avg})"
            );
            prev = avg;
        }
    }

    #[test]
    fn average_is_between_extremes() {
        let (topo, _wl, loads, sol, opts) = solved(0.004);
        let avg = average_latency(&topo, 32.0, &UnicastPattern::Uniform, &loads, &sol, &opts);
        let mut lo = f64::INFINITY;
        let mut hi = 0.0f64;
        for s in 0..16u32 {
            for d in 0..16u32 {
                if s != d {
                    let l = pair_latency(&topo, NodeId(s), NodeId(d), 32.0, &loads, &sol, &opts);
                    lo = lo.min(l);
                    hi = hi.max(l);
                }
            }
        }
        assert!(lo <= avg && avg <= hi);
        // Nearest-neighbour latency must be below the cross-quadrant one at
        // equal load (fewer hops, fewer queueing points).
        let near = pair_latency(&topo, NodeId(0), NodeId(1), 32.0, &loads, &sol, &opts);
        let far = pair_latency(&topo, NodeId(0), NodeId(6), 32.0, &loads, &sol, &opts);
        assert!(near < far);
    }

    #[test]
    fn correction_none_is_upper_bound() {
        let (topo, _wl, loads, sol, _) = solved(0.006);
        let with = path_waiting_sum(
            &topo.unicast_path(NodeId(0), NodeId(4)),
            &loads,
            &sol,
            &ModelOptions::default(),
        );
        let without = path_waiting_sum(
            &topo.unicast_path(NodeId(0), NodeId(4)),
            &loads,
            &sol,
            &ModelOptions {
                correction: crate::options::ServiceCorrection::None,
                ..Default::default()
            },
        );
        assert!(without >= with);
    }
}
