//! The top-level model facade.

use crate::multicast::{self, NodeMulticast};
use crate::options::ModelOptions;
use crate::rates::ChannelLoads;
use crate::service::{self, Saturated, ServiceSolution};
use crate::unicast;
use noc_topology::{ChannelId, Topology};
use noc_workloads::Workload;

/// Model evaluation errors.
#[derive(Clone, Debug, PartialEq)]
pub enum ModelError {
    /// The offered load exceeds the stability limit of some channel.
    Saturated {
        /// The bottleneck channel.
        bottleneck: ChannelId,
        /// Its (lower-bound) utilisation.
        rho: f64,
    },
    /// The topology serialises multicast through a single port (e.g. the
    /// one-port Spidergon baseline); the asynchronous multi-port model does
    /// not apply.
    NonConcurrentMulticast,
    /// The topology uses implicit channel storage (the scale families):
    /// the analytical backends iterate dense per-channel load vectors and
    /// are deliberately out of scope there. Materialize the topology (or
    /// pick a size the dense path can hold) to model it.
    UnsupportedTopology {
        /// The topology's family name (`Topology::name`).
        name: String,
    },
}

impl std::fmt::Display for ModelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelError::Saturated { bottleneck, rho } => {
                write!(f, "saturated at channel {bottleneck:?} (rho = {rho:.3})")
            }
            ModelError::NonConcurrentMulticast => write!(
                f,
                "the multi-port multicast model requires concurrent port streams"
            ),
            ModelError::UnsupportedTopology { name } => write!(
                f,
                "analytical backends need materialized channel storage; \
                 topology '{name}' is implicit"
            ),
        }
    }
}

impl std::error::Error for ModelError {}

impl From<Saturated> for ModelError {
    fn from(s: Saturated) -> Self {
        ModelError::Saturated {
            bottleneck: s.bottleneck,
            rho: s.rho,
        }
    }
}

/// A complete model prediction for one operating point.
#[derive(Clone, Debug)]
pub struct Prediction {
    /// Average unicast message latency (Eq. 7, averaged over pairs).
    pub unicast_latency: f64,
    /// Average multicast operation latency (Eq. 16); `NaN` when no node
    /// has a destination set.
    pub multicast_latency: f64,
    /// Per-node multicast detail (Eq. 14).
    pub per_node: Vec<NodeMulticast>,
    /// Largest channel utilisation.
    pub max_rho: f64,
    /// Fixed-point iterations used by the service recursion.
    pub iterations: usize,
}

/// The analytical model bound to a topology and workload.
pub struct AnalyticModel<'a> {
    topo: &'a dyn Topology,
    wl: &'a Workload,
    opts: ModelOptions,
}

impl<'a> AnalyticModel<'a> {
    /// Bind the model to `topo` and `wl`.
    pub fn new(topo: &'a dyn Topology, wl: &'a Workload, opts: ModelOptions) -> Self {
        AnalyticModel { topo, wl, opts }
    }

    /// The channel loads this workload induces (diagnostics / tests).
    pub fn channel_loads(&self) -> ChannelLoads {
        ChannelLoads::build(self.topo, self.wl, &self.opts)
    }

    /// Solve the service recursion (diagnostics / tests).
    pub fn solve_service(&self) -> Result<ServiceSolution, ModelError> {
        let loads = self.channel_loads();
        Ok(service::solve(
            self.topo,
            &loads,
            self.wl.msg_len as f64,
            &self.opts,
        )?)
    }

    /// Evaluate the full model.
    ///
    /// Returns [`ModelError::Saturated`] beyond the stability limit and
    /// [`ModelError::NonConcurrentMulticast`] for one-port topologies with
    /// a positive multicast fraction.
    pub fn evaluate(&self) -> Result<Prediction, ModelError> {
        if self.topo.network().is_implicit() {
            return Err(ModelError::UnsupportedTopology {
                name: self.topo.name().to_string(),
            });
        }
        if self.wl.multicast_fraction > 0.0 && !self.topo.concurrent_multicast() {
            return Err(ModelError::NonConcurrentMulticast);
        }
        let msg = self.wl.msg_len as f64;
        let loads = ChannelLoads::build(self.topo, self.wl, &self.opts);
        let sol = service::solve(self.topo, &loads, msg, &self.opts)?;

        let unicast_latency = unicast::average_latency(
            self.topo,
            msg,
            &self.wl.unicast_pattern,
            &loads,
            &sol,
            &self.opts,
        );
        let (per_node, multicast_latency) = if self.topo.concurrent_multicast() {
            multicast::evaluate(
                self.topo,
                self.wl.routing,
                msg,
                &|n| self.wl.multicast_set(n),
                &loads,
                &sol,
                &self.opts,
            )
        } else {
            (Vec::new(), f64::NAN)
        };
        let max_rho = sol.rho.iter().copied().fold(0.0, f64::max);
        Ok(Prediction {
            unicast_latency,
            multicast_latency,
            per_node,
            max_rho,
            iterations: sol.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_topology::{Quarc, Ring, Spidergon};
    use noc_workloads::DestinationSets;

    #[test]
    fn evaluates_quarc_at_moderate_load() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        let wl = Workload::new(32, 0.004, 0.05, sets).unwrap();
        let model = AnalyticModel::new(&topo, &wl, ModelOptions::default());
        let pred = model.evaluate().unwrap();
        assert!(pred.unicast_latency > 32.0);
        assert!(pred.multicast_latency > 32.0);
        assert!(pred.max_rho > 0.0 && pred.max_rho < 1.0);
        assert_eq!(pred.per_node.len(), 16);
    }

    #[test]
    fn multicast_latency_exceeds_unicast_latency() {
        // The multicast must wait for the slowest of four streams and its
        // hop count is the quadrant depth, so it dominates the average
        // unicast at the same operating point.
        let topo = Quarc::new(32).unwrap();
        let sets = DestinationSets::random(&topo, 8, 2);
        let wl = Workload::new(32, 0.003, 0.05, sets).unwrap();
        let pred = AnalyticModel::new(&topo, &wl, ModelOptions::default())
            .evaluate()
            .unwrap();
        assert!(pred.multicast_latency > pred.unicast_latency);
    }

    #[test]
    fn saturation_error_propagates() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        let wl = Workload::new(64, 0.25, 0.1, sets).unwrap();
        let err = AnalyticModel::new(&topo, &wl, ModelOptions::default())
            .evaluate()
            .unwrap_err();
        assert!(matches!(err, ModelError::Saturated { .. }));
    }

    #[test]
    fn spidergon_multicast_is_rejected() {
        let topo = Spidergon::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        let wl = Workload::new(32, 0.002, 0.05, sets).unwrap();
        let err = AnalyticModel::new(&topo, &wl, ModelOptions::default())
            .evaluate()
            .unwrap_err();
        assert_eq!(err, ModelError::NonConcurrentMulticast);
        // But unicast-only traffic evaluates fine.
        let wl = Workload::new(32, 0.002, 0.0, DestinationSets::random(&topo, 4, 1)).unwrap();
        let pred = AnalyticModel::new(&topo, &wl, ModelOptions::default())
            .evaluate()
            .unwrap();
        assert!(pred.unicast_latency > 32.0);
    }

    #[test]
    fn ring_two_port_model_evaluates() {
        let topo = Ring::new(8).unwrap();
        let sets = DestinationSets::random(&topo, 3, 4);
        let wl = Workload::new(16, 0.004, 0.1, sets).unwrap();
        let pred = AnalyticModel::new(&topo, &wl, ModelOptions::default())
            .evaluate()
            .unwrap();
        assert!(pred.multicast_latency.is_finite());
        for nm in &pred.per_node {
            assert!(nm.port_waits.len() <= 2, "ring has at most two streams");
        }
    }

    #[test]
    fn clone_ejection_load_option_evaluates_and_raises_latency() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::broadcast(&topo);
        let wl = Workload::new(32, 0.002, 0.3, sets).unwrap();
        let base = AnalyticModel::new(&topo, &wl, ModelOptions::default())
            .evaluate()
            .unwrap();
        let with = AnalyticModel::new(
            &topo,
            &wl,
            ModelOptions {
                clone_ejection_load: true,
                ..Default::default()
            },
        )
        .evaluate()
        .unwrap();
        // Counting clone load adds ejection-channel queueing, so the
        // prediction cannot drop.
        assert!(with.multicast_latency >= base.multicast_latency - 1e-9);
        assert!(with.max_rho >= base.max_rho);
    }

    #[test]
    fn prediction_is_deterministic() {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        let wl = Workload::new(32, 0.004, 0.05, sets).unwrap();
        let a = AnalyticModel::new(&topo, &wl, ModelOptions::default())
            .evaluate()
            .unwrap();
        let b = AnalyticModel::new(&topo, &wl, ModelOptions::default())
            .evaluate()
            .unwrap();
        assert_eq!(a.unicast_latency, b.unicast_latency);
        assert_eq!(a.multicast_latency, b.multicast_latency);
    }
}
