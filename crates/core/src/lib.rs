//! # quarc-core — the paper's analytical model
//!
//! Reproduction of *"A performance model of multicast communication in
//! wormhole-routed networks on-chip"* (Moadeli & Vanderbauwhede, IPDPS
//! 2009): an analytical model predicting the average latency of unicast and
//! multicast traffic in wormhole-routed direct networks whose routers are
//! asynchronous **multi-port** routers.
//!
//! ## Model structure
//!
//! 1. **Channel loads** ([`rates`]) — every channel (injection, link,
//!    ejection) receives a Poisson arrival rate `λ_j` accumulated from the
//!    deterministic routes of the unicast traffic (uniform destinations)
//!    and the fixed multicast streams, together with the next-channel
//!    decomposition `λ_{i→j}` needed by Eq. 6.
//! 2. **Service times** ([`service`]) — each channel is an M/G/1 queue
//!    (Eq. 3–5); mean service times satisfy the downstream recursion
//!    (Eq. 6)
//!    `x_i = Σ_j P_{i→j}·((1 − corr_{ij})·W_j + x_j + 1)`,
//!    solved as a damped fixed point over the (cyclic) channel graph.
//!    Ejection channels serve in `msg` cycles.
//! 3. **Unicast latency** ([`unicast`]) — Eq. 7:
//!    `L(s,d) = Σ_l w_l + msg + D`, averaged over all pairs (§2.1).
//! 4. **Multicast latency** ([`multicast`]) — per source and port, the
//!    total path waiting `Ω_{j,c}` defines an exponential with rate
//!    `µ_{j,c} = 1/Ω_{j,c}` (Eq. 8); the multicast waiting time is the
//!    expected **maximum** of the `m` port exponentials (Eq. 12–13), and
//!    `L_j = W_j + msg + D_j` with `D_j = max_c D_{j,c}` (Eq. 14–15),
//!    averaged over nodes (Eq. 16).
//!
//! ## Fidelity knobs
//!
//! The printed paper leaves two formulas ambiguous (see DESIGN.md);
//! [`ModelOptions`] exposes both choices so the ablation benches can
//! quantify them: the M/G/1 prefactor ([`WaitingFormula`]) and the
//! self-traffic correction factor of Eq. 6 ([`ServiceCorrection`]).
//!
//! ## Backends
//!
//! The M/G/1 pipeline above is one of two interchangeable analytical
//! backends behind the [`ModelBackend`] trait ([`backend`]): the paper's
//! mean-value model ([`MgOneBackend`]) and a distribution-free
//! network-calculus bound ([`NetworkCalculusBackend`], [`calculus`]) that
//! stays sound for bursty traffic and every routing scheme. The
//! serializable [`BackendSpec`] selects one per scenario.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod calculus;
pub mod model;
pub mod multicast;
pub mod options;
pub mod rates;
pub mod saturation;
pub mod service;
pub mod unicast;

pub use backend::{BackendSpec, MgOneBackend, ModelBackend, NetworkCalculusBackend, ALL_BACKENDS};
pub use calculus::ChannelBounds;
pub use model::{AnalyticModel, ModelError, Prediction};
pub use noc_queueing::mg1::WaitingFormula;
pub use options::{ModelOptions, ServiceCorrection};
pub use rates::ChannelLoads;
pub use saturation::{bisect_max_rate, max_sustainable_rate};
pub use service::ServiceSolution;
