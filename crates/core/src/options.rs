//! Model configuration.

use noc_queueing::fixed_point::FixedPoint;
use noc_queueing::mg1::WaitingFormula;
use serde::{Deserialize, Serialize};

/// The self-traffic correction factor applied to the waiting time a
/// message sees at the next channel (Eq. 6).
///
/// A message moving from channel `i` to channel `j` does not queue behind
/// its own traffic stream; the model discounts `W_j` accordingly. The
/// printed equation reads `(1 − (λ_{i→j}/λ_j)·P_{i→j})`, which double-counts
/// the branching probability; the conventional form in this model family
/// discounts by the fraction of `j`'s arrivals that originate from `i`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceCorrection {
    /// `1 − λ_{i→j}/λ_j` — discount `W_j` by the fraction of `j`'s traffic
    /// coming from `i` (default; the standard reading).
    #[default]
    SelfExcluding,
    /// `1 − (λ_{i→j}/λ_j)·P_{i→j}` — Eq. 6 exactly as printed.
    LiteralEq6,
    /// No correction (`W_j` used in full) — ablation baseline.
    None,
}

impl ServiceCorrection {
    /// The multiplicative factor applied to `W_j`.
    ///
    /// `frac_from_prev` is `λ_{i→j}/λ_j` and `p_next` is `P_{i→j}`.
    #[inline]
    pub fn factor(self, frac_from_prev: f64, p_next: f64) -> f64 {
        let f = match self {
            ServiceCorrection::SelfExcluding => 1.0 - frac_from_prev,
            ServiceCorrection::LiteralEq6 => 1.0 - frac_from_prev * p_next,
            ServiceCorrection::None => 1.0,
        };
        f.clamp(0.0, 1.0)
    }
}

/// All model fidelity knobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ModelOptions {
    /// Which algebraic form of the M/G/1 waiting time to use (Eq. 3).
    pub formula: WaitingFormula,
    /// Self-traffic correction in the service recursion (Eq. 6).
    pub correction: ServiceCorrection,
    /// Whether multicast clones at intermediate targets add load to the
    /// ejection channels. Physically the clone occupies a dedicated
    /// ejection channel in lock-step with its input link and never queues,
    /// so the default is `false`; `true` is an ablation.
    pub clone_ejection_load: bool,
    /// Fixed-point solver settings for the service recursion.
    pub fixed_point: FixedPoint,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correction_factors() {
        let frac = 0.4;
        let p = 0.5;
        assert_eq!(ServiceCorrection::SelfExcluding.factor(frac, p), 0.6);
        assert_eq!(ServiceCorrection::LiteralEq6.factor(frac, p), 0.8);
        assert_eq!(ServiceCorrection::None.factor(frac, p), 1.0);
    }

    #[test]
    fn factor_is_clamped() {
        assert_eq!(ServiceCorrection::SelfExcluding.factor(1.5, 1.0), 0.0);
        assert_eq!(ServiceCorrection::SelfExcluding.factor(-0.2, 1.0), 1.0);
    }

    #[test]
    fn defaults_are_the_standard_reading() {
        let o = ModelOptions::default();
        assert_eq!(o.formula, WaitingFormula::PollaczekKhinchine);
        assert_eq!(o.correction, ServiceCorrection::SelfExcluding);
        assert!(!o.clone_ejection_load);
    }
}
