//! Model configuration.

use crate::backend::BackendSpec;
use noc_queueing::fixed_point::FixedPoint;
use noc_queueing::mg1::WaitingFormula;
use serde::{Deserialize, Serialize};

/// The self-traffic correction factor applied to the waiting time a
/// message sees at the next channel (Eq. 6).
///
/// A message moving from channel `i` to channel `j` does not queue behind
/// its own traffic stream; the model discounts `W_j` accordingly. The
/// printed equation reads `(1 − (λ_{i→j}/λ_j)·P_{i→j})`, which double-counts
/// the branching probability; the conventional form in this model family
/// discounts by the fraction of `j`'s arrivals that originate from `i`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum ServiceCorrection {
    /// `1 − λ_{i→j}/λ_j` — discount `W_j` by the fraction of `j`'s traffic
    /// coming from `i` (default; the standard reading).
    #[default]
    SelfExcluding,
    /// `1 − (λ_{i→j}/λ_j)·P_{i→j}` — Eq. 6 exactly as printed.
    LiteralEq6,
    /// No correction (`W_j` used in full) — ablation baseline.
    None,
}

impl ServiceCorrection {
    /// The multiplicative factor applied to `W_j`.
    ///
    /// `frac_from_prev` is `λ_{i→j}/λ_j` and `p_next` is `P_{i→j}`.
    #[inline]
    pub fn factor(self, frac_from_prev: f64, p_next: f64) -> f64 {
        let f = match self {
            ServiceCorrection::SelfExcluding => 1.0 - frac_from_prev,
            ServiceCorrection::LiteralEq6 => 1.0 - frac_from_prev * p_next,
            ServiceCorrection::None => 1.0,
        };
        f.clamp(0.0, 1.0)
    }
}

/// All model fidelity knobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize)]
pub struct ModelOptions {
    /// Which algebraic form of the M/G/1 waiting time to use (Eq. 3).
    pub formula: WaitingFormula,
    /// Self-traffic correction in the service recursion (Eq. 6).
    pub correction: ServiceCorrection,
    /// Whether multicast clones at intermediate targets add load to the
    /// ejection channels. Physically the clone occupies a dedicated
    /// ejection channel in lock-step with its input link and never queues,
    /// so the default is `false`; `true` is an ablation.
    pub clone_ejection_load: bool,
    /// Fixed-point solver settings for the service recursion.
    pub fixed_point: FixedPoint,
    /// Which analytical backend evaluates the model and anchors
    /// saturation-relative sweeps ([`crate::backend`]). The default is
    /// the paper's M/G/1 model, keeping historical scenarios and result
    /// files byte-identical.
    pub backend: BackendSpec,
}

// Manual impl (instead of derive) so option files written before the
// backend selector existed still parse: a missing `backend` key means the
// M/G/1 model, which is what those files meant.
impl Deserialize for ModelOptions {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        Ok(ModelOptions {
            formula: Deserialize::from_value(serde::de::field(v, "ModelOptions", "formula")?)?,
            correction: Deserialize::from_value(serde::de::field(
                v,
                "ModelOptions",
                "correction",
            )?)?,
            clone_ejection_load: Deserialize::from_value(serde::de::field(
                v,
                "ModelOptions",
                "clone_ejection_load",
            )?)?,
            fixed_point: Deserialize::from_value(serde::de::field(
                v,
                "ModelOptions",
                "fixed_point",
            )?)?,
            backend: match v.get("backend") {
                Some(b) => Deserialize::from_value(b)?,
                None => BackendSpec::default(),
            },
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn correction_factors() {
        let frac = 0.4;
        let p = 0.5;
        assert_eq!(ServiceCorrection::SelfExcluding.factor(frac, p), 0.6);
        assert_eq!(ServiceCorrection::LiteralEq6.factor(frac, p), 0.8);
        assert_eq!(ServiceCorrection::None.factor(frac, p), 1.0);
    }

    #[test]
    fn factor_is_clamped() {
        assert_eq!(ServiceCorrection::SelfExcluding.factor(1.5, 1.0), 0.0);
        assert_eq!(ServiceCorrection::SelfExcluding.factor(-0.2, 1.0), 1.0);
    }

    #[test]
    fn defaults_are_the_standard_reading() {
        let o = ModelOptions::default();
        assert_eq!(o.formula, WaitingFormula::PollaczekKhinchine);
        assert_eq!(o.correction, ServiceCorrection::SelfExcluding);
        assert!(!o.clone_ejection_load);
        assert_eq!(o.backend, BackendSpec::MgOne);
    }

    #[test]
    fn options_round_trip_with_backend() {
        let opts = ModelOptions {
            backend: BackendSpec::NetworkCalculus,
            ..ModelOptions::default()
        };
        let json = serde::json::to_string_pretty(&opts);
        let back: ModelOptions = serde::json::from_str(&json).expect("round trip parses");
        assert_eq!(back, opts);
    }

    #[test]
    fn pre_backend_option_files_stay_readable() {
        // Serialized before the backend selector existed: the missing key
        // must mean the M/G/1 model, not a parse error.
        let legacy = r#"{
            "formula": "PollaczekKhinchine",
            "correction": "SelfExcluding",
            "clone_ejection_load": false,
            "fixed_point": {
                "tolerance": 1e-9, "damping": 0.7,
                "max_iterations": 10000, "bound": 1e12
            }
        }"#;
        let opts: ModelOptions = serde::json::from_str(legacy).expect("legacy files parse");
        assert_eq!(opts, ModelOptions::default());
    }
}
