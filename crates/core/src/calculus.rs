//! The network-calculus analytical backend: worst-case delay/backlog
//! bounds over routed workloads.
//!
//! The paper's M/G/1 model ([`crate::model::AnalyticModel`]) predicts
//! *mean* latencies under two assumptions the scenario space has outgrown:
//! memoryless (Poisson) sources and routing schemes whose multicast
//! streams are asynchronous per-port wormholes. This backend drops both by
//! working with deterministic (σ, ρ) arrival envelopes instead of
//! distributions (Farhi & Gaujal, arXiv 1007.4853 lineage):
//!
//! 1. **Flow envelopes** — every source's message process gets a
//!    token-bucket envelope: `σ = 1` for the geometric source, the
//!    mean-burst envelope for on/off sources, and the *exact* empirical
//!    envelope for trace replay ([`noc_queueing::network_calculus`]).
//! 2. **Per-channel aggregation** — the same deterministic route walks as
//!    [`ChannelLoads`] accumulate, per channel, the aggregate burst `σ_j`
//!    (flits) with a per-source *multiplicity*: one multicast operation
//!    places one message per stream crossing the channel, which is exactly
//!    the shared-prefix co-arrival (`Multipath`) and injection-port
//!    serialisation (`UnicastTree`) that the M/G/1 model cannot see.
//! 3. **Holding-time recursion** — the worst-case time a channel stays
//!    allocated to one message mirrors the shape of Eq. 6 with the mean
//!    M/G/1 wait replaced by the fluid wait `w_j = ρ_j·h_j/(1 − ρ_j)`
//!    (`ρ_j = λ_j·h_j`) and no self-traffic discount:
//!    `h_i = Σ_j P_{i→j}·(w_j + h_j + 1)`, ejection channels hold for
//!    `msg` cycles. Divergence of this recursion is the (conservative)
//!    saturation horizon of the backend; bursts do not enter it — a
//!    static burst delays messages without changing long-run
//!    utilisation.
//! 4. **Path/operation bounds** — after convergence each channel gets the
//!    FIFO delay bound `D_j = (σ_j + ρ_j·h_j)/(1 − ρ_j)`; a header's
//!    end-to-end wait is bounded by the sum of `D` over its path, a
//!    multicast operation by the *sum* over its streams (sound even when
//!    streams serialise or share links), plus the deterministic
//!    `msg + hops` pipeline term.
//!
//! Every per-channel bound dominates the corresponding M/G/1 mean
//! (`D_j ≥ ρ_j h_j/(1−ρ_j) ≥ W_j`, uncorrected sums ≥ corrected sums,
//! `Σ streams ≥ E[max streams]`), which yields the cross-validation
//! invariant `bound ≥ M/G/1 mean ≥ zero-load latency` checked by the
//! property tests — and, where simulation exists, `bound ≥ simulated
//! mean`.

use crate::model::{ModelError, Prediction};
use crate::multicast::NodeMulticast;
use crate::options::ModelOptions;
use crate::rates::ChannelLoads;
use crate::service::Saturated;
use noc_queueing::fixed_point::{FixedPointError, FixedPointOutcome};
use noc_queueing::network_calculus::{
    channel_backlog_bound, channel_delay_bound, onoff_burstiness, trace_burstiness,
};
use noc_topology::{ChannelId, ChannelKind, NodeId, Path, Topology};
use noc_workloads::{TrafficSpec, Workload};

/// Channel loads extended with the aggregate worst-case burst per channel.
#[derive(Clone, Debug)]
pub(crate) struct NcLoads {
    pub(crate) loads: ChannelLoads,
    /// Aggregate burst `σ_j` per channel, in flits.
    pub(crate) sigma: Vec<f64>,
}

impl NcLoads {
    pub(crate) fn build(topo: &dyn Topology, wl: &Workload, opts: &ModelOptions) -> Self {
        let loads = ChannelLoads::build(topo, wl, opts);
        let net = topo.network();
        let nch = net.num_channels();
        let n = net.num_nodes();
        let msg = wl.msg_len as f64;

        // Per-source message-burst envelopes (messages per burst).
        let sigma_src: Vec<f64> = match &wl.traffic {
            TrafficSpec::Geometric => vec![1.0; n],
            TrafficSpec::OnOff {
                burst_len,
                peak_rate,
            } => vec![onoff_burstiness(*burst_len, *peak_rate, wl.gen_rate); n],
            TrafficSpec::Trace { entries } => {
                let mut cycles: Vec<Vec<u64>> = vec![Vec::new(); n];
                for e in entries.iter() {
                    if (e.node as usize) < n {
                        cycles[e.node as usize].push(e.cycle);
                    }
                }
                cycles
                    .iter()
                    .map(|c| trace_burstiness(c, wl.gen_rate))
                    .collect()
            }
        };

        // Aggregate burst per channel, by source: a burst of σ_src
        // messages can worst-case all take routes crossing channel j, and
        // each message contributes `mult` appearances there — 1 for a
        // unicast (one path per operation), the number of streams crossing
        // j for a multicast (streams of one operation share prefix links
        // under multipath and the injection port under the unicast
        // baseline). Mixed classes take the larger multiplicity.
        let uni_rate = wl.unicast_rate();
        let mc_rate = wl.multicast_rate();
        let mut sigma = vec![0.0; nch];
        let mut mc_mult = vec![0u32; nch];
        let mut uni_cross = vec![false; nch];
        let mut touched: Vec<usize> = Vec::new();
        for (s, &sig_src) in sigma_src.iter().enumerate() {
            let src = NodeId(s as u32);
            if uni_rate > 0.0 {
                for d in 0..n {
                    if s == d {
                        continue;
                    }
                    let dst = NodeId(d as u32);
                    if wl.unicast_pattern.weight(n, src, dst) <= 0.0 {
                        continue;
                    }
                    for c in topo.unicast_path(src, dst).channels() {
                        if !uni_cross[c.idx()] {
                            uni_cross[c.idx()] = true;
                            touched.push(c.idx());
                        }
                    }
                }
            }
            if mc_rate > 0.0 {
                let set = wl.multicast_set(src);
                if !set.is_empty() {
                    for stream in wl.routing.streams(topo, src, set) {
                        for c in stream.path.channels() {
                            if mc_mult[c.idx()] == 0 && !uni_cross[c.idx()] {
                                touched.push(c.idx());
                            }
                            mc_mult[c.idx()] += 1;
                        }
                    }
                }
            }
            for &i in &touched {
                let mult = mc_mult[i].max(uni_cross[i] as u32) as f64;
                sigma[i] += sig_src * mult * msg;
                mc_mult[i] = 0;
                uni_cross[i] = false;
            }
            touched.clear();
        }
        NcLoads { loads, sigma }
    }
}

/// Converged per-channel worst-case quantities (diagnostics / tests).
#[derive(Clone, Debug)]
pub struct ChannelBounds {
    /// Worst-case holding time `h_j` per channel (cycles).
    pub holding: Vec<f64>,
    /// Worst-case header acquisition delay `D_j` per channel (cycles).
    pub delay: Vec<f64>,
    /// Utilisation `ρ_j = λ_j·h_j` per channel.
    pub rho: Vec<f64>,
    /// Worst-case backlog per channel (flits).
    pub backlog: Vec<f64>,
    /// Fixed-point iterations used by the holding recursion.
    pub iterations: usize,
}

fn solve_bounds(
    topo: &dyn Topology,
    nc: &NcLoads,
    msg_len: f64,
    opts: &ModelOptions,
) -> Result<ChannelBounds, Saturated> {
    let net = topo.network();
    let nch = net.num_channels();

    // Quick screen, identical to the M/G/1 solver: a channel whose raw
    // rate exceeds the drain rate can never be stable.
    if let Some((idx, &l)) = nc
        .loads
        .lambda
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
    {
        if l * msg_len >= 1.0 {
            return Err(Saturated {
                bottleneck: ChannelId(idx as u32),
                rho: l * msg_len,
            });
        }
    }

    let is_terminal: Vec<bool> = net
        .channels()
        .iter()
        .map(|c| c.kind == ChannelKind::Ejection || nc.loads.successors[c.id.idx()].is_empty())
        .collect();

    // Stability and holding times follow the fluid (burst-free) wait
    // `ρ_j·h_j/(1−ρ_j)`: a static burst delays messages but does not
    // change long-run utilisation, so feeding the aggregate burst back
    // into the holding recursion would compound it along every path and
    // collapse the stability horizon to near zero. The burst enters the
    // per-channel *delay* bound below, after convergence. The fluid wait
    // still dominates the Pollaczek–Khinchine mean (its `(1+cv²)/2`
    // prefactor is ≤ 1 under the paper's variance heuristic), which keeps
    // `bound ≥ M/G/1 mean`.
    let wait_at = |j: usize, h: f64| -> f64 {
        channel_delay_bound(0.0, nc.loads.lambda[j], h).unwrap_or(f64::INFINITY)
    };
    let delay_at = |j: usize, h: f64| -> f64 {
        channel_delay_bound(nc.sigma[j], nc.loads.lambda[j], h).unwrap_or(f64::INFINITY)
    };

    let x0 = vec![msg_len; nch];
    let result = opts.fixed_point.solve(x0, |x, out| {
        for i in 0..nch {
            if is_terminal[i] {
                out[i] = msg_len;
                continue;
            }
            let li = nc.loads.lambda[i];
            if li <= 0.0 {
                out[i] = msg_len;
                continue;
            }
            let mut acc = 0.0;
            for &(j, rate) in &nc.loads.successors[i] {
                let j = j.idx();
                acc += (rate / li) * (wait_at(j, x[j]) + x[j] + 1.0);
            }
            out[i] = acc;
        }
    });

    match result {
        Ok((holding, outcome)) => {
            let iterations = match outcome {
                FixedPointOutcome::Converged { iterations } => iterations,
                FixedPointOutcome::MaxIterations { residual } => {
                    if residual > 1e-3 {
                        let (idx, rho) = max_rho(&nc.loads.lambda, &holding);
                        return Err(Saturated {
                            bottleneck: ChannelId(idx as u32),
                            rho,
                        });
                    }
                    opts.fixed_point.max_iterations
                }
            };
            let delay: Vec<f64> = (0..nch).map(|j| delay_at(j, holding[j])).collect();
            let (idx, rho) = max_rho(&nc.loads.lambda, &holding);
            if rho >= 1.0 || delay.iter().any(|d| !d.is_finite()) {
                return Err(Saturated {
                    bottleneck: ChannelId(idx as u32),
                    rho,
                });
            }
            let backlog = (0..nch)
                .map(|j| {
                    channel_backlog_bound(nc.sigma[j], nc.loads.lambda[j], holding[j], msg_len)
                        .unwrap_or(f64::NAN)
                })
                .collect();
            let rho_v = (0..nch).map(|j| nc.loads.lambda[j] * holding[j]).collect();
            Ok(ChannelBounds {
                holding,
                delay,
                rho: rho_v,
                backlog,
                iterations,
            })
        }
        Err(FixedPointError::Diverged { .. }) => {
            let (idx, rho) = max_rho(&nc.loads.lambda, &vec![msg_len; nch]);
            Err(Saturated {
                bottleneck: ChannelId(idx as u32),
                rho,
            })
        }
    }
}

fn max_rho(lambda: &[f64], holding: &[f64]) -> (usize, f64) {
    let mut best = (0usize, 0.0f64);
    for i in 0..lambda.len() {
        let r = lambda[i] * holding[i];
        if r > best.1 {
            best = (i, r);
        }
    }
    best
}

/// The network-calculus backend (see the module docs). A unit type: all
/// state lives in the workload and options it is handed per call.
#[derive(Clone, Copy, Debug, Default)]
pub struct NetworkCalculusBackend;

impl NetworkCalculusBackend {
    /// Per-channel worst-case holding/delay/backlog bounds (diagnostics;
    /// [`crate::backend::ModelBackend::evaluate`] assembles them into a
    /// [`Prediction`]).
    pub fn channel_bounds(
        &self,
        topo: &dyn Topology,
        wl: &Workload,
        opts: &ModelOptions,
    ) -> Result<ChannelBounds, ModelError> {
        if topo.network().is_implicit() {
            return Err(ModelError::UnsupportedTopology {
                name: topo.name().to_string(),
            });
        }
        let nc = NcLoads::build(topo, wl, opts);
        Ok(solve_bounds(topo, &nc, wl.msg_len as f64, opts)?)
    }

    pub(crate) fn evaluate_bounds(
        &self,
        topo: &dyn Topology,
        wl: &Workload,
        opts: &ModelOptions,
    ) -> Result<Prediction, ModelError> {
        if topo.network().is_implicit() {
            // The (σ,ρ) accumulation walks dense per-channel vectors —
            // out of scope for implicit scale topologies, same boundary
            // as the M/G/1 backend.
            return Err(ModelError::UnsupportedTopology {
                name: topo.name().to_string(),
            });
        }
        if wl.multicast_fraction > 0.0 && !topo.concurrent_multicast() {
            // One-port topologies serialise multicast through a single
            // stream table the schemes do not describe — same domain
            // boundary as the M/G/1 backend.
            return Err(ModelError::NonConcurrentMulticast);
        }
        let msg = wl.msg_len as f64;
        let nc = NcLoads::build(topo, wl, opts);
        let bounds = solve_bounds(topo, &nc, msg, opts)?;
        let path_bound =
            |path: &Path| -> f64 { path.channels().map(|c| bounds.delay[c.idx()]).sum() };

        // Unicast: worst-case wait sums over each pair's path, averaged
        // with the pattern's destination weights — the bound analogue of
        // Eq. 7's average (no self-traffic discount: bounds do not take
        // the mean-value correction).
        let n = topo.num_nodes();
        let mut total = 0.0;
        for s in 0..n {
            for d in 0..n {
                if s == d {
                    continue;
                }
                let (s, d) = (NodeId(s as u32), NodeId(d as u32));
                let w = wl.unicast_pattern.weight(n, s, d);
                if w <= 0.0 {
                    continue;
                }
                let path = topo.unicast_path(s, d);
                total += w * (path_bound(&path) + msg + path.hop_count() as f64);
            }
        }
        let unicast_latency = total / n as f64;

        // Multicast: the operation completes when the *last* stream
        // drains; the sum of per-stream wait bounds dominates the maximum
        // (and remains sound when streams serialise at a shared port or
        // co-travel a shared prefix — the regimes the E[max]-of-
        // exponentials model excludes).
        let mut per_node = Vec::with_capacity(n);
        let mut mc_total = 0.0;
        if topo.concurrent_multicast() {
            for j in 0..n {
                let node = NodeId(j as u32);
                let set = wl.multicast_set(node);
                if set.is_empty() {
                    continue;
                }
                let streams = wl.routing.streams(topo, node, set);
                let mut port_waits = Vec::with_capacity(streams.len());
                let mut max_hops = 0usize;
                for st in &streams {
                    port_waits.push(path_bound(&st.path));
                    max_hops = max_hops.max(st.path.hop_count());
                }
                let waiting: f64 = port_waits.iter().sum();
                let latency = waiting + msg + max_hops as f64;
                mc_total += latency;
                per_node.push(NodeMulticast {
                    node,
                    port_waits,
                    waiting,
                    max_hops,
                    latency,
                });
            }
        }
        let multicast_latency = if per_node.is_empty() {
            f64::NAN
        } else {
            mc_total / per_node.len() as f64
        };
        let max_rho = bounds.rho.iter().copied().fold(0.0, f64::max);
        Ok(Prediction {
            unicast_latency,
            multicast_latency,
            per_node,
            max_rho,
            iterations: bounds.iterations,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::ModelBackend;
    use crate::model::AnalyticModel;
    use noc_topology::{Quarc, RoutingSpec};
    use noc_workloads::DestinationSets;

    fn workload(rate: f64, alpha: f64) -> (Quarc, Workload) {
        let topo = Quarc::new(16).unwrap();
        let sets = DestinationSets::random(&topo, 4, 1);
        let wl = Workload::new(32, rate, alpha, sets).unwrap();
        (topo, wl)
    }

    #[test]
    fn zero_load_bound_equals_zero_load_latency() {
        let (topo, wl) = workload(0.0, 0.0);
        let opts = ModelOptions::default();
        let nc = NetworkCalculusBackend
            .evaluate_bounds(&topo, &wl, &opts)
            .unwrap();
        let mg1 = AnalyticModel::new(&topo, &wl, opts).evaluate().unwrap();
        // No traffic: every delay bound is zero, so the "worst case"
        // collapses to the deterministic pipeline latency on both sides.
        assert!((nc.unicast_latency - mg1.unicast_latency).abs() < 1e-9);
        assert!((nc.multicast_latency - mg1.multicast_latency).abs() < 1e-9);
        assert_eq!(nc.max_rho, 0.0);
    }

    #[test]
    fn bound_dominates_the_mg1_mean_under_poisson_load() {
        // Rates are fractions of the backend's own stability horizon —
        // worst-case stability sits well below the M/G/1 asymptote, so
        // absolute rates near the M/G/1 knee are already "saturated" here.
        let (topo, proto) = workload(1e-5, 0.1);
        let nc_sat = NetworkCalculusBackend.max_sustainable_rate(
            &topo,
            &proto,
            &ModelOptions::default(),
            0.02,
        );
        assert!(nc_sat > 1e-4, "NC horizon unexpectedly tiny: {nc_sat}");
        for frac in [0.25, 0.5, 0.8] {
            let rate = frac * nc_sat;
            let (topo, wl) = workload(rate, 0.1);
            let opts = ModelOptions::default();
            let nc = NetworkCalculusBackend
                .evaluate_bounds(&topo, &wl, &opts)
                .unwrap();
            let mg1 = AnalyticModel::new(&topo, &wl, opts).evaluate().unwrap();
            assert!(
                nc.unicast_latency >= mg1.unicast_latency,
                "rate {rate}: unicast bound {} below mean {}",
                nc.unicast_latency,
                mg1.unicast_latency
            );
            assert!(
                nc.multicast_latency >= mg1.multicast_latency,
                "rate {rate}: multicast bound {} below mean {}",
                nc.multicast_latency,
                mg1.multicast_latency
            );
        }
    }

    #[test]
    fn burstier_traffic_widens_the_bound() {
        let (topo, wl) = workload(0.002, 0.1);
        let opts = ModelOptions::default();
        let smooth = NetworkCalculusBackend
            .evaluate_bounds(&topo, &wl, &opts)
            .unwrap();
        let bursty_wl = wl.with_traffic(TrafficSpec::OnOff {
            burst_len: 8.0,
            peak_rate: 0.2,
        });
        let bursty = NetworkCalculusBackend
            .evaluate_bounds(&topo, &bursty_wl, &opts)
            .unwrap();
        assert!(
            bursty.multicast_latency > smooth.multicast_latency,
            "burst envelope must widen the bound: {} vs {}",
            bursty.multicast_latency,
            smooth.multicast_latency
        );
    }

    #[test]
    fn multipath_streams_share_prefix_burst() {
        // The whole point of the backend: Multipath is out of the M/G/1
        // domain but evaluates to a finite bound at low load.
        let (topo, wl) = workload(0.0004, 0.2);
        let wl = wl.with_routing(RoutingSpec::Multipath);
        let opts = ModelOptions::default();
        let nc = NetworkCalculusBackend
            .evaluate_bounds(&topo, &wl, &opts)
            .unwrap();
        assert!(nc.multicast_latency.is_finite() && nc.multicast_latency > 32.0);
        assert!(nc.unicast_latency.is_finite());
    }

    #[test]
    fn nc_saturation_is_conservative() {
        let (topo, wl) = workload(1e-5, 0.1);
        let opts = ModelOptions::default();
        let nc_sat = NetworkCalculusBackend.max_sustainable_rate(&topo, &wl, &opts, 0.02);
        let mg1_sat = crate::saturation::max_sustainable_rate(&topo, &wl, opts, 0.02);
        assert!(nc_sat > 0.0, "some rate must be sustainable");
        assert!(
            nc_sat <= mg1_sat,
            "worst-case stability must not exceed the mean-value horizon \
             ({nc_sat} vs {mg1_sat})"
        );
    }

    #[test]
    fn saturation_errors_propagate() {
        let (topo, wl) = workload(0.25, 0.1);
        let err = NetworkCalculusBackend
            .evaluate_bounds(&topo, &wl, &ModelOptions::default())
            .unwrap_err();
        assert!(matches!(err, ModelError::Saturated { .. }));
    }

    #[test]
    fn channel_bounds_expose_backlog() {
        let (topo, wl) = workload(0.002, 0.1);
        let b = NetworkCalculusBackend
            .channel_bounds(&topo, &wl, &ModelOptions::default())
            .unwrap();
        let net = topo.network();
        assert_eq!(b.backlog.len(), net.num_channels());
        // Loaded channels carry a positive worst-case backlog of at least
        // one burst's worth of flits somewhere.
        let max_b = b.backlog.iter().copied().fold(0.0, f64::max);
        assert!(max_b >= 32.0, "peak backlog {max_b} below one message");
        assert!(b.rho.iter().all(|&r| (0.0..1.0).contains(&r)));
        assert!(b.delay.iter().all(|&d| d.is_finite() && d >= 0.0));
    }

    #[test]
    fn trace_envelopes_feed_the_bound() {
        use noc_workloads::{TraceEntry, TraceKind};
        let (topo, wl) = workload(0.001, 0.0);
        // A tight clump on node 0: the empirical envelope sees the burst.
        let entries: Vec<TraceEntry> = (0..8)
            .map(|k| TraceEntry {
                cycle: 100 + k,
                node: 0,
                kind: TraceKind::Unicast { dst: 5 },
            })
            .collect();
        let wl = wl.with_traffic(TrafficSpec::trace(entries));
        let nc = NcLoads::build(&topo, &wl, &ModelOptions::default());
        let max_sigma = nc.sigma.iter().copied().fold(0.0, f64::max);
        // 8 clumped messages of 32 flits minus the rate-line allowance.
        assert!(
            max_sigma > 7.0 * 32.0,
            "clump must dominate the envelope, got {max_sigma}"
        );
    }
}
