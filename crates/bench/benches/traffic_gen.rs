//! Microbenchmark: arrival-sampling throughput per traffic-process kind.
//!
//! The traffic subsystem's contract is that generation costs O(arrivals),
//! never O(cycles), for every process kind. This bench measures the
//! per-arrival sampling cost of each [`TrafficSpec`] implementation —
//! geometric (the paper's Poisson source), on/off (bursty) and trace
//! replay — by drawing a fixed number of arrivals through the same
//! [`ArrivalStream`] front door the engines use (stream construction
//! included, so the trace kind pays its per-node split).
//!
//! Besides the criterion report, the harness writes `BENCH_traffic.json`
//! with the median per-arrival cost of every kind, mirroring
//! `BENCH_sim.json` so CI records the trajectory over time.

use criterion::{criterion_group, BenchmarkId, Criterion};
use noc_sim::{record_trace, Arrival, ArrivalStream};
use noc_topology::{NodeId, Quarc};
use noc_workloads::{DestinationSets, TrafficSpec, Workload};
use std::time::Instant;

const N: usize = 16;
const RATE: f64 = 0.02;
const ARRIVALS_PER_RUN: u64 = 20_000;

fn workload(traffic: TrafficSpec) -> Workload {
    let topo = Quarc::new(N).unwrap();
    let sets = DestinationSets::random(&topo, 4, 1);
    Workload::new(32, RATE, 0.05, sets)
        .unwrap()
        .with_traffic(traffic)
}

fn kinds() -> Vec<(&'static str, Workload)> {
    let onoff = TrafficSpec::OnOff {
        burst_len: 16.0,
        peak_rate: 0.5,
    };
    // A trace long enough that replay never runs dry inside a run.
    let geo = workload(TrafficSpec::Geometric);
    let horizon = 2 * (ARRIVALS_PER_RUN / N as u64) * (1.0 / RATE) as u64;
    let entries = record_trace(&geo, N, 7, horizon);
    vec![
        ("geometric", geo),
        ("onoff", workload(onoff)),
        ("trace", workload(TrafficSpec::trace(entries))),
    ]
}

/// Build fresh streams and pop `ARRIVALS_PER_RUN` arrivals round-robin,
/// returning a checksum so the work cannot be optimized away.
fn sample_arrivals(wl: &Workload) -> u64 {
    let mut streams = ArrivalStream::build_all(wl, N, 7);
    let mut checksum = 0u64;
    let mut node = 0usize;
    for _ in 0..ARRIVALS_PER_RUN {
        // Cheap round-robin over the nodes; trace streams may run dry.
        let mut hops = 0;
        while streams[node].next_arrival() == u64::MAX && hops <= N {
            node = (node + 1) % N;
            hops += 1;
        }
        if hops > N {
            break;
        }
        checksum = checksum.wrapping_add(streams[node].next_arrival());
        match streams[node].pop(wl, N, NodeId(node as u32)) {
            Arrival::Unicast(d) => checksum = checksum.wrapping_add(d.0 as u64),
            Arrival::Multicast => checksum = checksum.wrapping_add(1),
        }
        node = (node + 1) % N;
    }
    checksum
}

fn bench_traffic(c: &mut Criterion) {
    let mut g = c.benchmark_group("traffic_gen");
    g.sample_size(10);
    for (label, wl) in &kinds() {
        let id = BenchmarkId::new("sample", label.to_string());
        g.bench_with_input(id, label, |b, _| b.iter(|| sample_arrivals(wl)));
    }
    g.finish();
}

criterion_group!(benches, bench_traffic);

/// Median wall time of `samples` runs (after one warmup run).
fn time_runs(wl: &Workload, samples: usize) -> u128 {
    let _ = sample_arrivals(wl);
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            let _ = sample_arrivals(wl);
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    times[times.len() / 2]
}

/// Measure every kind once more (few samples — this is the recorded
/// trajectory, not the statistically careful report) and write
/// `BENCH_traffic.json`.
fn emit_json() {
    let mut rows = Vec::new();
    for (label, wl) in &kinds() {
        let median_ns = time_runs(wl, 5);
        let per_arrival = median_ns as f64 / ARRIVALS_PER_RUN as f64;
        eprintln!("{label}: {per_arrival:.1} ns/arrival");
        rows.push((label.to_string(), median_ns, per_arrival));
    }
    let mut json = String::from("{\n  \"bench\": \"traffic-gen\",\n  \"points\": [\n");
    for (i, (label, median_ns, per_arrival)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"process\": \"{label}\", \"arrivals\": {ARRIVALS_PER_RUN}, \
             \"median_ns\": {median_ns}, \"ns_per_arrival\": {per_arrival:.2}}}{}\n",
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_traffic.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote BENCH_traffic.json ({} kinds)", rows.len()),
        Err(e) => eprintln!("could not write BENCH_traffic.json: {e}"),
    }
}

fn main() {
    benches();
    emit_json();
}
