//! Microbenchmark: the expected maximum of independent exponentials
//! (paper Eq. 12 vs the closed-form inclusion–exclusion identity).
//!
//! The model evaluates this once per source node per operating point; the
//! bench verifies both forms are cheap and quantifies the gap.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_queueing::expmax::{expected_max_exponentials, expected_max_recursive};

fn bench_expmax(c: &mut Criterion) {
    let mut g = c.benchmark_group("expmax");
    for m in [2usize, 4, 8, 12] {
        let rates: Vec<f64> = (1..=m).map(|i| 0.02 * i as f64).collect();
        g.bench_with_input(BenchmarkId::new("closed_form", m), &rates, |b, r| {
            b.iter(|| expected_max_exponentials(black_box(r)))
        });
        g.bench_with_input(BenchmarkId::new("recursive", m), &rates, |b, r| {
            b.iter(|| expected_max_recursive(black_box(r)))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_expmax);
criterion_main!(benches);
