//! Macrobenchmark: full analytical model evaluation (channel loads +
//! service fixed point + unicast average + multicast E[max]) across Quarc
//! sizes — one evaluation per sweep point of the figure harness, so this
//! bounds the cost of regenerating a panel's model curve.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_topology::Quarc;
use noc_workloads::{DestinationSets, Workload};
use quarc_core::{AnalyticModel, ModelOptions};

fn bench_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("model_eval");
    g.sample_size(20);
    // Mid-load operating points (~50% of each size's saturation rate for
    // M = 32, alpha = 5%) so the fixed point converges for every size.
    for (n, rate) in [(16usize, 0.003), (32, 0.0015), (64, 0.0006), (128, 0.00015)] {
        let topo = Quarc::new(n).unwrap();
        let sets = DestinationSets::random(&topo, n / 4, 1);
        let wl = Workload::new(32, rate, 0.05, sets).unwrap();
        g.bench_with_input(BenchmarkId::new("quarc", n), &n, |b, _| {
            b.iter(|| {
                AnalyticModel::new(&topo, &wl, ModelOptions::default())
                    .evaluate()
                    .expect("stable operating point")
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
