//! Macrobenchmark: flit-level simulator throughput, both engines side by
//! side.
//!
//! Sweeps the generation rate from deep low-load (where the Fig. 6/7
//! validation protocol spends most of its points, and where the
//! event-driven engine's inert-cycle skipping pays off) up to a busy
//! operating point, on a small and a large Quarc. Every `(n, rate)` pair
//! is measured under the cycle-stepped reference engine and the
//! event-driven engine; both are constructed on one shared [`SimPlan`] so
//! the comparison isolates run cost.
//!
//! Besides the criterion report, the harness writes `BENCH_sim.json` with
//! every measured point and the per-`n` lowest-rate speedup, so CI can
//! record the performance trajectory over time.

use criterion::{criterion_group, BenchmarkId, Criterion};
use noc_sim::{EngineKind, EventSimulator, SimConfig, SimPlan, Simulator};
use noc_topology::Quarc;
use noc_workloads::{DestinationSets, Workload};
use std::sync::Arc;
use std::time::Instant;

fn short_cfg(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        warmup_cycles: 1_000,
        measure_cycles: 8_000,
        drain_cycles: 20_000,
        buffer_depth: 2,
        backlog_limit: 50_000,
        batch_size: 32,
        engine: EngineKind::default(),
    }
}

/// The swept operating points per network size: the lowest rate is a deep
/// low-load point — the regime the Fig. 6/7 sweeps mostly sample (large-N
/// panels start near 0.05× of a per-node saturation rate of a few 1e-4) —
/// and the last approaches the busy knee.
fn rates_for(n: usize) -> [f64; 3] {
    match n {
        16 => [0.0001, 0.002, 0.008],
        _ => [0.00002, 0.0008, 0.003],
    }
}

struct Panel {
    n: usize,
    topo: Quarc,
    wl_proto: Workload,
    plan: Arc<SimPlan>,
}

fn panels() -> Vec<Panel> {
    [16usize, 64]
        .into_iter()
        .map(|n| {
            let topo = Quarc::new(n).unwrap();
            let sets = DestinationSets::random(&topo, n / 4, 1);
            let wl_proto = Workload::new(32, 0.004, 0.05, sets).unwrap();
            let plan = SimPlan::build(&topo, &wl_proto);
            Panel {
                n,
                topo,
                wl_proto,
                plan,
            }
        })
        .collect()
}

fn run_once(panel: &Panel, wl: &Workload, engine: EngineKind) -> noc_sim::SimResults {
    let cfg = short_cfg(7);
    match engine {
        EngineKind::Cycle => {
            Simulator::with_plan(&panel.topo, wl, cfg, Arc::clone(&panel.plan)).run()
        }
        EngineKind::EventDriven => {
            EventSimulator::with_plan(&panel.topo, wl, cfg, Arc::clone(&panel.plan)).run()
        }
    }
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for panel in &panels() {
        for rate in rates_for(panel.n) {
            let wl = panel.wl_proto.at_rate(rate).unwrap();
            for (label, engine) in [
                ("cycle", EngineKind::Cycle),
                ("event", EngineKind::EventDriven),
            ] {
                let id =
                    BenchmarkId::new(format!("quarc{}_{label}", panel.n), format!("rate{rate}"));
                g.bench_with_input(id, &rate, |b, _| b.iter(|| run_once(panel, &wl, engine)));
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sim);

/// One measured point of the JSON record.
struct Point {
    n: usize,
    rate: f64,
    engine: &'static str,
    median_ns: u128,
    flit_moves: u64,
    cycles: u64,
}

/// Median wall time of `samples` runs (after one warmup run).
fn time_runs(
    panel: &Panel,
    wl: &Workload,
    engine: EngineKind,
    samples: usize,
) -> (u128, noc_sim::SimResults) {
    let last = run_once(panel, wl, engine); // warmup + result capture
    let mut times: Vec<u128> = (0..samples)
        .map(|_| {
            let t0 = Instant::now();
            let _ = run_once(panel, wl, engine);
            t0.elapsed().as_nanos()
        })
        .collect();
    times.sort_unstable();
    (times[times.len() / 2], last)
}

/// Measure every point once more (few samples — this is the recorded
/// trajectory, not the statistically careful report) and write
/// `BENCH_sim.json`.
fn emit_json() {
    let samples = 5usize;
    let mut points = Vec::new();
    let mut speedups = Vec::new();
    for panel in &panels() {
        let rates = rates_for(panel.n);
        let mut lowest_pair = (0u128, 0u128); // (cycle, event) at rates[0]
        for rate in rates {
            let wl = panel.wl_proto.at_rate(rate).unwrap();
            for (label, engine) in [
                ("cycle", EngineKind::Cycle),
                ("event", EngineKind::EventDriven),
            ] {
                let (median_ns, res) = time_runs(panel, &wl, engine, samples);
                if rate == rates[0] {
                    if engine == EngineKind::Cycle {
                        lowest_pair.0 = median_ns;
                    } else {
                        lowest_pair.1 = median_ns;
                    }
                }
                points.push(Point {
                    n: panel.n,
                    rate,
                    engine: label,
                    median_ns,
                    flit_moves: res.flit_moves,
                    cycles: res.cycles,
                });
            }
        }
        let speedup = lowest_pair.0 as f64 / lowest_pair.1.max(1) as f64;
        eprintln!(
            "quarc{}: event engine speedup at lowest rate {}: {speedup:.1}x",
            panel.n, rates[0]
        );
        speedups.push((panel.n, speedup));
    }

    let mut json = String::from("{\n  \"bench\": \"sim-throughput\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"topology\": \"quarc\", \"n\": {}, \"rate\": {}, \"engine\": \"{}\", \
             \"median_ns\": {}, \"flit_moves\": {}, \"cycles\": {}}}{}\n",
            p.n,
            p.rate,
            p.engine,
            p.median_ns,
            p.flit_moves,
            p.cycles,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"speedup_at_lowest_rate\": {");
    for (i, (n, s)) in speedups.iter().enumerate() {
        json.push_str(&format!(
            "\"quarc{n}\": {s:.2}{}",
            if i + 1 < speedups.len() { ", " } else { "" }
        ));
    }
    json.push_str("}\n}\n");
    // cargo runs benches with the package dir as cwd; record the file at
    // the workspace root where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote BENCH_sim.json ({} points)", points.len()),
        Err(e) => eprintln!("could not write BENCH_sim.json: {e}"),
    }
}

fn main() {
    benches();
    emit_json();
}
