//! Macrobenchmark: flit-level simulator throughput.
//!
//! Runs a fixed-length simulation at a moderate operating point and
//! reports wall time; combined with the `flit_moves` counter this gives
//! flit-traversals per second, the figure of merit for sweep cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_sim::{SimConfig, Simulator};
use noc_topology::Quarc;
use noc_workloads::{DestinationSets, Workload};

fn short_cfg(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        warmup_cycles: 1_000,
        measure_cycles: 8_000,
        drain_cycles: 20_000,
        buffer_depth: 2,
        backlog_limit: 50_000,
        batch_size: 32,
    }
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for n in [16usize, 64] {
        let topo = Quarc::new(n).unwrap();
        let sets = DestinationSets::random(&topo, n / 4, 1);
        let wl = Workload::new(32, 0.004, 0.05, sets).unwrap();
        g.bench_with_input(BenchmarkId::new("quarc_run", n), &n, |b, _| {
            b.iter(|| {
                let mut sim = Simulator::new(&topo, &wl, short_cfg(7));
                sim.run()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
