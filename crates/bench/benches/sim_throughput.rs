//! Macrobenchmark: flit-level simulator throughput, both engines side by
//! side.
//!
//! Sweeps the generation rate from deep low-load (where the Fig. 6/7
//! validation protocol spends most of its points, and where the
//! event-driven engine's inert-cycle skipping pays off) up to a busy
//! operating point, on a small and a large Quarc. Every `(n, rate)` pair
//! is measured under the cycle-stepped reference engine and the
//! event-driven engine; both are constructed on one shared [`SimPlan`] so
//! the comparison isolates run cost.
//!
//! Besides the criterion report, the harness writes `BENCH_sim.json` with
//! every measured point and the per-`n` lowest-rate speedup, so CI can
//! record the performance trajectory over time.

use criterion::{criterion_group, BenchmarkId, Criterion};
use noc_sim::{EngineKind, EventSimulator, SimConfig, SimPlan, Simulator, TelemetrySpec};
use noc_topology::Quarc;
use noc_workloads::{DestinationSets, Workload};
use std::sync::Arc;
use std::time::Instant;

fn short_cfg(seed: u64) -> SimConfig {
    SimConfig {
        seed,
        warmup_cycles: 1_000,
        measure_cycles: 8_000,
        drain_cycles: 20_000,
        buffer_depth: 2,
        backlog_limit: 50_000,
        batch_size: 32,
        engine: EngineKind::default(),
        telemetry: TelemetrySpec::default(),
    }
}

/// The swept operating points per network size: the lowest rate is a deep
/// low-load point — the regime the Fig. 6/7 sweeps mostly sample (large-N
/// panels start near 0.05× of a per-node saturation rate of a few 1e-4) —
/// the third approaches the busy knee, and the last sits past it, deep in
/// backpressure, where nearly every cycle is active and the event engine
/// has no inert cycles to skip (the regime the heap-based queue lost in).
fn rates_for(n: usize) -> [f64; 4] {
    match n {
        16 => [0.0001, 0.002, 0.008, 0.014],
        _ => [0.00002, 0.0008, 0.003, 0.005],
    }
}

struct Panel {
    n: usize,
    topo: Quarc,
    wl_proto: Workload,
    plan: Arc<SimPlan>,
}

fn panels() -> Vec<Panel> {
    [16usize, 64]
        .into_iter()
        .map(|n| {
            let topo = Quarc::new(n).unwrap();
            let sets = DestinationSets::random(&topo, n / 4, 1);
            let wl_proto = Workload::new(32, 0.004, 0.05, sets).unwrap();
            let plan = SimPlan::build(&topo, &wl_proto).expect("plan builds");
            Panel {
                n,
                topo,
                wl_proto,
                plan,
            }
        })
        .collect()
}

fn run_once(panel: &Panel, wl: &Workload, engine: EngineKind) -> noc_sim::SimResults {
    let cfg = short_cfg(7);
    match engine {
        EngineKind::Cycle => {
            Simulator::with_plan(&panel.topo, wl, cfg, Arc::clone(&panel.plan)).run()
        }
        EngineKind::EventDriven => {
            EventSimulator::with_plan(&panel.topo, wl, cfg, Arc::clone(&panel.plan)).run()
        }
    }
}

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_throughput");
    g.sample_size(10);
    for panel in &panels() {
        for rate in rates_for(panel.n) {
            let wl = panel.wl_proto.at_rate(rate).unwrap();
            for (label, engine) in [
                ("cycle", EngineKind::Cycle),
                ("event", EngineKind::EventDriven),
            ] {
                let id =
                    BenchmarkId::new(format!("quarc{}_{label}", panel.n), format!("rate{rate}"));
                g.bench_with_input(id, &rate, |b, _| b.iter(|| run_once(panel, &wl, engine)));
            }
        }
    }
    g.finish();
}

criterion_group!(benches, bench_sim);

/// One measured point of the JSON record.
struct Point {
    n: usize,
    rate: f64,
    engine: &'static str,
    min_ns: u128,
    flit_moves: u64,
    cycles: u64,
}

/// Best wall times of `samples` *interleaved* cycle/event run pairs
/// (after one warmup run of each). Alternating the engines inside one
/// sampling loop cancels clock-frequency and thermal drift that
/// sequential per-engine sampling would fold into whichever engine runs
/// later — on shared CI machines that drift dwarfs the engine delta —
/// and taking each engine's *minimum* discards host steal time, which
/// only ever adds. Returns `(cycle_min_ns, event_min_ns)` and one
/// results pair.
fn time_pair(
    panel: &Panel,
    wl: &Workload,
    samples: usize,
) -> (u128, u128, noc_sim::SimResults, noc_sim::SimResults) {
    let cycle_res = run_once(panel, wl, EngineKind::Cycle);
    let event_res = run_once(panel, wl, EngineKind::EventDriven);
    let mut cycle_times = Vec::with_capacity(samples);
    let mut event_times = Vec::with_capacity(samples);
    for i in 0..samples {
        let timed = |engine| {
            let t0 = Instant::now();
            let _ = run_once(panel, wl, engine);
            t0.elapsed().as_nanos()
        };
        // Alternate which engine leads each pair so neither engine
        // systematically samples the warmer machine state.
        let (cycle_ns, event_ns) = if i % 2 == 0 {
            let c = timed(EngineKind::Cycle);
            (c, timed(EngineKind::EventDriven))
        } else {
            let e = timed(EngineKind::EventDriven);
            (timed(EngineKind::Cycle), e)
        };
        cycle_times.push(cycle_ns);
        event_times.push(event_ns);
    }
    (
        *cycle_times.iter().min().unwrap(),
        *event_times.iter().min().unwrap(),
        cycle_res,
        event_res,
    )
}

/// Measure every point once more and write `BENCH_sim.json`. The sample
/// count is sized so the per-engine minimum reliably reaches the steal-free
/// floor on a busy host — on long (150 ms+) saturated points, small sample
/// counts leave several percent of host noise in the recorded minima,
/// which dwarfs the engine delta at parity.
fn emit_json() {
    let samples = 15usize;
    let mut points = Vec::new();
    let mut speedups = Vec::new();
    for panel in &panels() {
        let rates = rates_for(panel.n);
        let mut lowest_pair = (0u128, 0u128); // (cycle, event) at rates[0]
        let mut highest_pair = (0u128, 0u128); // (cycle, event) at rates[last]
        for rate in rates {
            let wl = panel.wl_proto.at_rate(rate).unwrap();
            let (cycle_ns, event_ns, cycle_res, event_res) = time_pair(panel, &wl, samples);
            if rate == rates[0] {
                lowest_pair = (cycle_ns, event_ns);
            }
            if rate == rates[rates.len() - 1] {
                highest_pair = (cycle_ns, event_ns);
            }
            for (label, min_ns, res) in [
                ("cycle", cycle_ns, &cycle_res),
                ("event", event_ns, &event_res),
            ] {
                points.push(Point {
                    n: panel.n,
                    rate,
                    engine: label,
                    min_ns,
                    flit_moves: res.flit_moves,
                    cycles: res.cycles,
                });
            }
        }
        let speedup = lowest_pair.0 as f64 / lowest_pair.1.max(1) as f64;
        let high_speedup = highest_pair.0 as f64 / highest_pair.1.max(1) as f64;
        eprintln!(
            "quarc{}: event engine speedup at lowest rate {}: {speedup:.1}x; \
             at highest rate {}: {high_speedup:.2}x",
            panel.n,
            rates[0],
            rates[rates.len() - 1]
        );
        speedups.push((panel.n, speedup, high_speedup));
    }

    let mut json = String::from("{\n  \"bench\": \"sim-throughput\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"topology\": \"quarc\", \"n\": {}, \"rate\": {}, \"engine\": \"{}\", \
             \"min_ns\": {}, \"flit_moves\": {}, \"cycles\": {}}}{}\n",
            p.n,
            p.rate,
            p.engine,
            p.min_ns,
            p.flit_moves,
            p.cycles,
            if i + 1 < points.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"speedup_at_lowest_rate\": {");
    for (i, (n, s, _)) in speedups.iter().enumerate() {
        json.push_str(&format!(
            "\"quarc{n}\": {s:.2}{}",
            if i + 1 < speedups.len() { ", " } else { "" }
        ));
    }
    json.push_str("},\n  \"speedup_at_highest_rate\": {");
    for (i, (n, _, s)) in speedups.iter().enumerate() {
        json.push_str(&format!(
            "\"quarc{n}\": {s:.2}{}",
            if i + 1 < speedups.len() { ", " } else { "" }
        ));
    }
    json.push_str("}\n}\n");
    // cargo runs benches with the package dir as cwd; record the file at
    // the workspace root where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote BENCH_sim.json ({} points)", points.len()),
        Err(e) => eprintln!("could not write BENCH_sim.json: {e}"),
    }
}

fn main() {
    benches();
    emit_json();
}
