//! Microbenchmark: the Eq. 6 service-time fixed point in isolation, across
//! load levels — convergence slows as the operating point approaches
//! saturation (the contraction factor tends to 1), which this bench makes
//! visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_topology::Quarc;
use noc_workloads::{DestinationSets, Workload};
use quarc_core::rates::ChannelLoads;
use quarc_core::{service, ModelOptions};

fn bench_fixed_point(c: &mut Criterion) {
    let mut g = c.benchmark_group("service_fixed_point");
    g.sample_size(20);
    let topo = Quarc::new(32).unwrap();
    let sets = DestinationSets::random(&topo, 8, 1);
    // The saturation rate for this configuration is ~0.00305; the three
    // points sit at roughly 25%, 55% and 90% of it.
    for (label, rate) in [("low", 0.0008), ("mid", 0.0017), ("high", 0.0027)] {
        let wl = Workload::new(32, rate, 0.05, sets.clone()).unwrap();
        let opts = ModelOptions::default();
        let loads = ChannelLoads::build(&topo, &wl, &opts);
        g.bench_with_input(BenchmarkId::new("quarc32", label), &rate, |b, _| {
            b.iter(|| service::solve(&topo, &loads, 32.0, &opts).expect("stable"))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fixed_point);
criterion_main!(benches);
