//! # noc-bench
//!
//! Experiment harness and figure-regeneration binaries for the IPDPS 2009
//! reproduction.
//!
//! Each binary regenerates one figure or ablation of the paper (see
//! DESIGN.md's experiment index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig2-topology`      | Fig. 2 — Quarc vs Spidergon topology (DOT/ASCII) |
//! | `fig3-broadcast`     | Fig. 3 — broadcast streams in a 16-node Quarc |
//! | `fig6`               | Fig. 6 — model vs simulation, random destinations |
//! | `fig7`               | Fig. 7 — model vs simulation, localized destinations |
//! | `ablation-correction`| Eq. 3/Eq. 6 formula variants |
//! | `ablation-ports`     | E\[max\] combination vs largest-subset heuristic |
//! | `spidergon-baseline` | Quarc true multicast vs Spidergon unicast train |
//! | `mesh-extension`     | the paper's future work: multi-port mesh/torus |
//!
//! The harness evaluates the analytical model and the flit-level simulator
//! on identical workloads and emits CSV plus aligned terminal tables.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod harness;

pub use harness::{run_panel, sweep_for, FigureConfig, Pattern, PointResult};
