//! # noc-bench
//!
//! The experiment layer of the IPDPS 2009 reproduction: the declarative
//! [`Scenario`] specification, the [`Runner`] that executes any scenario
//! end-to-end, the workspace-level [`Error`] type, and the
//! figure-regeneration binaries.
//!
//! ## The Scenario API
//!
//! Every experiment in the workspace is one shape: `(topology, workload,
//! sweep, engine, model options) → latency curves`. [`Scenario`] captures
//! that shape as serializable data (any registry topology, any traffic
//! pattern, absolute or saturation-relative sweeps, replicates);
//! [`Runner`] executes it with one shared [`noc_sim::SimPlan`] across all
//! sweep points and replicates, parallel workers, an optional
//! analytical-model overlay and structured sinks (aligned table, CSV,
//! JSON, progress callbacks). `(scenario) → results` is deterministic:
//! thread counts and callbacks never change the numbers.
//!
//! Each binary regenerates one figure or ablation of the paper (see
//! DESIGN.md's experiment index):
//!
//! | binary | regenerates |
//! |---|---|
//! | `fig2-topology`      | Fig. 2 — Quarc vs Spidergon topology (DOT/ASCII) |
//! | `fig3-broadcast`     | Fig. 3 — broadcast streams in a 16-node Quarc |
//! | `fig6`               | Fig. 6 — model vs simulation, random destinations |
//! | `fig7`               | Fig. 7 — model vs simulation, localized destinations |
//! | `ablation-correction`| Eq. 3/Eq. 6 formula variants |
//! | `ablation-ports`     | E\[max\] combination vs largest-subset heuristic |
//! | `spidergon-baseline` | Quarc true multicast vs Spidergon unicast train |
//! | `mesh-extension`     | the paper's future work: multi-port mesh/torus |
//! | `hypercube-extension`| the model on the hypercube family that motivated it |
//! | `fig-burstiness`     | where the Poisson assumption breaks (burst-length sweep) |
//! | `fig-routing`        | where the path-based assumption breaks (routing-scheme sweep) |
//! | `fig-bounds`         | network-calculus bound vs simulation (backend cross-validation) |
//! | `fig-closedloop`     | closed-loop latency/throughput knee (coherence window sweep) |
//! | `fig-heatmap`        | flight-recorder exhibit: per-link congestion heatmaps + Perfetto flit traces |
//! | `fig-scale`          | scale-axis exhibit: implicit MIN/clustered ladder up to 64k nodes under a peak-RSS budget |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cli;
pub mod error;
pub mod harness;
pub mod runner;
pub mod scenario;

pub use error::{Error, Result};
pub use harness::{default_panels, full_panels, FigureConfig, Pattern};
pub use runner::{PointResult, Progress, Runner, ScenarioResult};
pub use scenario::{MulticastPattern, Scenario, SweepSpec, WorkloadSpec};
