//! The declarative experiment specification.
//!
//! A [`Scenario`] is the serializable description of one experiment of the
//! paper's shape — `(topology, workload, sweep, engine, model options) →
//! latency curves` — generalized over every topology in the registry. A
//! scenario is *data*: it can be written to JSON, stored next to its
//! results, sent to another machine and re-run bit-identically. The
//! [`crate::runner::Runner`] turns a scenario into results; nothing in the
//! spec layer touches a simulator.
//!
//! Design rules:
//!
//! * Everything is constructed by value and validated by
//!   [`Scenario::validate`] — malformed specs are typed
//!   [`Error`]s, not panics.
//! * All randomness derives from the single master [`Scenario::seed`]
//!   (destination sets and simulation streams), so `(scenario) → results`
//!   is a pure function.
//! * Sweeps may be stated relative to the analytical model's saturation
//!   point ([`SweepSpec::SaturationSpan`]), reproducing the figures'
//!   "flat region through the knee" framing on any topology.

use crate::error::{Error, Result};
use noc_app::ClosedLoopSpec;
use noc_sim::SimConfig;
use noc_topology::{NodeId, Topology, TopologySpec};
use noc_workloads::{
    DestinationSets, RateSweep, RoutingSpec, TrafficSpec, UnicastPattern, Workload,
};
use quarc_core::{BackendSpec, ModelOptions};
use serde::{Deserialize, Serialize};

/// Placeholder generation rate of workload *prototypes*: low enough that
/// saturation searches start from a stable point, replaced by the swept
/// rate before every run.
pub const PROTOTYPE_RATE: f64 = 1e-5;

/// How each node's fixed multicast destination set is generated.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum MulticastPattern {
    /// `group` destinations drawn uniformly at random per node (Fig. 6).
    Random {
        /// Destination-set size per node.
        group: usize,
    },
    /// `group` destinations localized in one injection-port quadrant of
    /// the source ("same rim", Fig. 7).
    Localized {
        /// Destination-set size per node.
        group: usize,
    },
    /// Every node targets all other nodes.
    Broadcast,
    /// Explicit destination sets, one per node in node order (raw node
    /// indices so the spec stays topology-independent in serialized form).
    Explicit {
        /// `sets[src]` lists the destination node indices of `src`.
        sets: Vec<Vec<u32>>,
    },
}

impl MulticastPattern {
    /// Materialize the destination sets on a topology. Deterministic in
    /// `(topology, self, seed)`.
    pub fn build(&self, topo: &dyn Topology, seed: u64) -> DestinationSets {
        match self {
            MulticastPattern::Random { group } => DestinationSets::random(topo, *group, seed),
            MulticastPattern::Localized { group } => DestinationSets::localized(topo, *group, seed),
            MulticastPattern::Broadcast => DestinationSets::broadcast(topo),
            MulticastPattern::Explicit { sets } => DestinationSets::explicit(
                sets.iter()
                    .map(|s| s.iter().copied().map(NodeId).collect())
                    .collect(),
            ),
        }
    }

    /// Short code used in derived labels.
    pub fn code(&self) -> &'static str {
        match self {
            MulticastPattern::Random { .. } => "random",
            MulticastPattern::Localized { .. } => "localized",
            MulticastPattern::Broadcast => "broadcast",
            MulticastPattern::Explicit { .. } => "explicit",
        }
    }
}

/// The serializable traffic specification of a scenario.
#[derive(Clone, Debug, PartialEq, Serialize)]
pub struct WorkloadSpec {
    /// Message length in flits (`M`).
    pub msg_len: u32,
    /// Multicast fraction (`α`).
    pub alpha: f64,
    /// Multicast destination-set generation.
    pub multicast: MulticastPattern,
    /// Spatial pattern of unicast destinations.
    pub unicast: UnicastPattern,
    /// Temporal arrival process of every node's source.
    pub traffic: TrafficSpec,
    /// Multicast routing scheme.
    pub routing: RoutingSpec,
    /// Closed-loop protocol driving injections instead of open-loop
    /// arrivals. `Some` turns the scenario into a closed-loop run: the
    /// sweep must be the single placeholder rate `0.0`, the traffic spec
    /// stays the (unused) geometric default, and the runner installs the
    /// protocol on the engine instead of evaluating the model overlay.
    pub closed_loop: Option<ClosedLoopSpec>,
}

// Hand-written so scenarios persisted before the traffic subsystem (no
// `traffic` key) or the routing abstraction (no `routing` key) stay
// readable: a missing field means the only behaviour that existed then —
// the paper's geometric source / path-based BRCP routing.
impl serde::Deserialize for WorkloadSpec {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        Ok(WorkloadSpec {
            msg_len: Deserialize::from_value(serde::de::field(v, "WorkloadSpec", "msg_len")?)?,
            alpha: Deserialize::from_value(serde::de::field(v, "WorkloadSpec", "alpha")?)?,
            multicast: Deserialize::from_value(serde::de::field(v, "WorkloadSpec", "multicast")?)?,
            unicast: Deserialize::from_value(serde::de::field(v, "WorkloadSpec", "unicast")?)?,
            traffic: match v.get("traffic") {
                Some(t) => Deserialize::from_value(t)?,
                None => TrafficSpec::Geometric,
            },
            routing: match v.get("routing") {
                Some(r) => Deserialize::from_value(r)?,
                None => RoutingSpec::PathBased,
            },
            // Pre-closed-loop specs have no `closed_loop` key: open loop.
            closed_loop: match v.get("closed_loop") {
                Some(c) => Deserialize::from_value(c)?,
                None => None,
            },
        })
    }
}

impl WorkloadSpec {
    /// Uniform-unicast, memoryless-arrivals spec (the paper's default).
    pub fn new(msg_len: u32, alpha: f64, multicast: MulticastPattern) -> Self {
        WorkloadSpec {
            msg_len,
            alpha,
            multicast,
            unicast: UnicastPattern::Uniform,
            traffic: TrafficSpec::Geometric,
            routing: RoutingSpec::PathBased,
            closed_loop: None,
        }
    }

    /// Builder-style: replace the arrival process.
    pub fn with_traffic(mut self, traffic: TrafficSpec) -> Self {
        self.traffic = traffic;
        self
    }

    /// Builder-style: replace the multicast routing scheme.
    pub fn with_routing(mut self, routing: RoutingSpec) -> Self {
        self.routing = routing;
        self
    }

    /// Builder-style: replace the unicast destination pattern.
    pub fn with_unicast(mut self, unicast: UnicastPattern) -> Self {
        self.unicast = unicast;
        self
    }

    /// Builder-style: drive the run with a closed-loop protocol.
    pub fn with_closed_loop(mut self, spec: ClosedLoopSpec) -> Self {
        self.closed_loop = Some(spec);
        self
    }

    /// Materialize the workload prototype (at [`PROTOTYPE_RATE`]) on a
    /// topology, deterministically in `seed`.
    pub fn prototype(&self, topo: &dyn Topology, seed: u64) -> Result<Workload> {
        let n = topo.num_nodes();
        self.unicast.validate(n)?;
        // Shape-only traffic validation (rate 0.0): PROTOTYPE_RATE is an
        // internal placeholder, so judging e.g. an on/off peak rate
        // against it would reject scenarios over a rate the user never
        // set. Per-rate consistency is checked by `Workload::at_rate`
        // where the swept rates are known.
        self.traffic.validate(n, 0.0)?;
        let sets = self.multicast.build(topo, seed);
        let wl = Workload::new(self.msg_len, PROTOTYPE_RATE, self.alpha, sets)?
            .with_unicast_pattern(self.unicast)
            .with_traffic(self.traffic.clone())
            .with_routing(self.routing);
        Ok(wl)
    }
}

/// The serializable sweep specification: either absolute rates or rates
/// relative to the analytical model's saturation point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum SweepSpec {
    /// Explicit ascending rates (messages/node/cycle).
    Explicit {
        /// The rates.
        rates: Vec<f64>,
    },
    /// `points` rates linear over `[lo, hi]`.
    Linear {
        /// Lowest rate.
        lo: f64,
        /// Highest rate.
        hi: f64,
        /// Number of points.
        points: usize,
    },
    /// `points` rates geometric over `[lo, hi]`.
    Geometric {
        /// Lowest rate.
        lo: f64,
        /// Highest rate.
        hi: f64,
        /// Number of points.
        points: usize,
    },
    /// `points` rates linear over `[lo, hi] ×` the model's saturation
    /// rate — the figures' framing (`lo = 0.15`, `hi = 1.02` shows the
    /// flat region and the knee). At least 2 points.
    SaturationSpan {
        /// Lower bound as a fraction of the saturation rate.
        lo: f64,
        /// Upper bound as a fraction of the saturation rate.
        hi: f64,
        /// Number of points.
        points: usize,
    },
    /// Explicit ascending fractions of the model's saturation rate (the
    /// ablation binaries' "30% / 60% / 85% of saturation" framing).
    SaturationFractions {
        /// Ascending load fractions.
        fractions: Vec<f64>,
    },
}

/// Relative tolerance of the saturation-rate bisection used by the
/// saturation-relative sweep variants (matches the figure harness).
const SATURATION_TOL: f64 = 0.01;

impl SweepSpec {
    /// Number of operating points the spec resolves to (without building
    /// a topology; `SaturationSpan` is clamped to its 2-point minimum).
    pub fn num_points(&self) -> usize {
        match self {
            SweepSpec::Explicit { rates } => rates.len(),
            SweepSpec::Linear { points, .. } | SweepSpec::Geometric { points, .. } => *points,
            SweepSpec::SaturationSpan { points, .. } => (*points).max(2),
            SweepSpec::SaturationFractions { fractions } => fractions.len(),
        }
    }

    /// The figures' default sweep: `points` rates over `[0.15, 1.02] ×`
    /// saturation.
    pub fn figure_default(points: usize) -> Self {
        SweepSpec::SaturationSpan {
            lo: 0.15,
            hi: 1.02,
            points,
        }
    }

    /// Resolve to concrete rates on a topology/workload, evaluating the
    /// saturation point with `model` where the spec is saturation-relative.
    ///
    /// The saturation anchor comes from `model.backend` — unless that
    /// backend's assumptions do not hold for `topo`/`proto` (e.g. the
    /// M/G/1 model under `Multipath` routing or bursty traffic), in which
    /// case the network-calculus backend anchors the sweep instead.
    /// Anchoring on an inapplicable backend used to place
    /// "0.9 × saturation" at or past the *real* saturation point.
    ///
    /// On implicit scale topologies *no* analytical backend applies, so
    /// saturation-relative sweeps are rejected as invalid scenarios —
    /// use explicit/linear/geometric rates there.
    pub fn resolve(
        &self,
        topo: &dyn Topology,
        proto: &Workload,
        model: ModelOptions,
    ) -> Result<RateSweep> {
        let sat = || -> Result<f64> {
            let anchor = if model.backend.backend().applicable(topo, proto) {
                model.backend
            } else if BackendSpec::NetworkCalculus
                .backend()
                .applicable(topo, proto)
            {
                BackendSpec::NetworkCalculus
            } else {
                return Err(Error::InvalidScenario(format!(
                    "saturation-relative sweeps need an applicable analytical \
                     backend to anchor on, and none supports the implicit \
                     topology '{}'; use explicit rates instead",
                    topo.name()
                )));
            };
            Ok(anchor
                .backend()
                .max_sustainable_rate(topo, proto, &model, SATURATION_TOL)
                .max(1e-5))
        };
        let sweep = match self {
            SweepSpec::Explicit { rates } => RateSweep::explicit(rates.clone())?,
            SweepSpec::Linear { lo, hi, points } => RateSweep::linear(*lo, *hi, *points)?,
            SweepSpec::Geometric { lo, hi, points } => RateSweep::geometric(*lo, *hi, *points)?,
            SweepSpec::SaturationSpan { lo, hi, points } => {
                let s = sat()?;
                RateSweep::linear(lo * s, hi * s, (*points).max(2))?
            }
            SweepSpec::SaturationFractions { fractions } => {
                let s = sat()?;
                RateSweep::explicit(fractions.iter().map(|f| f * s).collect())?
            }
        };
        Ok(sweep)
    }
}

/// A complete, serializable experiment specification.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Label used in tables, sink file names and progress reports.
    pub name: String,
    /// Which network to build (constructed through the registry).
    pub topology: TopologySpec,
    /// Traffic specification.
    pub workload: WorkloadSpec,
    /// Operating points.
    pub sweep: SweepSpec,
    /// Simulator run-length/fidelity parameters. The `seed` field is
    /// ignored: the runner derives every replicate's seed from
    /// [`Scenario::seed`].
    pub sim: SimConfig,
    /// Analytical-model overlay: `Some` evaluates the model at every
    /// sweep point (saturated points become `NaN`), `None` runs
    /// simulation only. Saturation-relative sweeps use these options (or
    /// the defaults when `None`) to locate the knee.
    pub model: Option<ModelOptions>,
    /// Independent simulation replicates per sweep point (seeds
    /// `seed .. seed + replicates`); results report the across-replicate
    /// mean. 1 reproduces a single tagged run exactly.
    pub replicates: u32,
    /// Master seed: destination sets and all simulation streams derive
    /// from it.
    pub seed: u64,
}

impl Scenario {
    /// A scenario with the standard simulator configuration, a default
    /// analytical overlay and one replicate.
    pub fn new(
        name: impl Into<String>,
        topology: TopologySpec,
        workload: WorkloadSpec,
        sweep: SweepSpec,
    ) -> Self {
        let seed = 42;
        Scenario {
            name: name.into(),
            topology,
            workload,
            sweep,
            sim: SimConfig::standard(seed),
            model: Some(ModelOptions::default()),
            replicates: 1,
            seed,
        }
    }

    /// Builder-style: replace the simulator configuration.
    pub fn with_sim(mut self, sim: SimConfig) -> Self {
        self.sim = sim;
        self
    }

    /// Builder-style: replace the analytical-model overlay.
    pub fn with_model(mut self, model: Option<ModelOptions>) -> Self {
        self.model = model;
        self
    }

    /// Builder-style: replace the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builder-style: set the replicate count.
    pub fn with_replicates(mut self, replicates: u32) -> Self {
        self.replicates = replicates;
        self
    }

    /// Build the topology and the workload prototype this scenario
    /// describes. This is the **single** construction path — the runner
    /// uses it, and any post-processing that needs the same materialized
    /// pair (e.g. overlaying extra model variants on a finished run)
    /// must call it too, so the two can never drift apart on seeding.
    pub fn materialize(&self) -> Result<(Box<dyn Topology>, Workload)> {
        let topo = self.topology.build()?;
        let proto = self.workload.prototype(topo.as_ref(), self.seed)?;
        Ok((topo, proto))
    }

    /// Check spec-level invariants (everything that can be checked
    /// without building the topology).
    pub fn validate(&self) -> Result<()> {
        if self.replicates == 0 {
            return Err(Error::InvalidScenario(
                "replicates must be >= 1".to_string(),
            ));
        }
        if !self.alpha_valid() {
            return Err(Error::InvalidScenario(format!(
                "multicast fraction {} must lie in [0, 1]",
                self.workload.alpha
            )));
        }
        self.sim.validate().map_err(Error::InvalidScenario)?;
        // The routing scheme must be realizable on the topology (e.g.
        // multipath and dual-path need multi-port routers) — a typed
        // error here, not a panic inside the simulator's plan builder.
        self.workload.routing.validate(
            self.topology.num_nodes(),
            self.topology.num_ports(),
            self.topology.has_linear_order(),
        )?;
        // Traffic-spec shape (parameter ranges, trace well-formedness).
        // Peak-rate-vs-swept-rate consistency is rechecked per resolved
        // rate by the runner, where the rates are known.
        self.workload
            .traffic
            .validate(self.topology.num_nodes(), 0.0)?;
        // A trace fixes the arrival schedule, so the swept rate cannot
        // change the simulation: a multi-point sweep would produce one
        // identical run per rate label — reject it instead of charting a
        // fake curve.
        if !self.workload.traffic.is_rate_driven() {
            if self.sweep.num_points() > 1 {
                return Err(Error::InvalidScenario(format!(
                    "trace traffic replays a fixed arrival schedule; a {}-point rate sweep \
                     would repeat the identical run under different rate labels",
                    self.sweep.num_points()
                )));
            }
            // Replicates only vary the simulation seed, which a trace
            // replay never draws from: N identical runs would aggregate
            // into a fabricated zero-width confidence interval.
            if self.replicates > 1 {
                return Err(Error::InvalidScenario(format!(
                    "trace traffic is deterministic; {} replicates would repeat the \
                     identical run and fake a zero-width confidence interval",
                    self.replicates
                )));
            }
        }
        if let Some(cl) = &self.workload.closed_loop {
            cl.validate(self.topology.num_nodes())
                .map_err(Error::InvalidScenario)?;
            // Closed-loop injections come from the protocol, not a rate:
            // the only honest sweep is the single placeholder point 0.0.
            // A rate sweep over a closed loop would chart N identical
            // runs under different rate labels.
            let placeholder = matches!(&self.sweep,
                SweepSpec::Explicit { rates } if rates.as_slice() == [0.0]);
            if !placeholder {
                return Err(Error::InvalidScenario(format!(
                    "closed-loop protocol {} generates its own injections; the sweep \
                     must be the single placeholder rate Explicit {{ rates: [0.0] }}",
                    cl.code()
                )));
            }
            // Open-loop arrival shaping (on/off bursts, trace replay) has
            // no source to shape: the generation rate is pinned to zero.
            if self.workload.traffic != TrafficSpec::Geometric {
                return Err(Error::InvalidScenario(format!(
                    "closed-loop protocol {} replaces the open-loop source; the traffic \
                     spec must stay the default (Geometric), got {:?}",
                    cl.code(),
                    self.workload.traffic
                )));
            }
            if self.workload.alpha != 0.0 {
                return Err(Error::InvalidScenario(format!(
                    "closed-loop scenarios generate no rate-driven multicasts; \
                     alpha must be 0, got {}",
                    self.workload.alpha
                )));
            }
            if cl.needs_broadcast()
                && !matches!(self.workload.multicast, MulticastPattern::Broadcast)
            {
                return Err(Error::InvalidScenario(format!(
                    "protocol {} releases via broadcast; the multicast pattern must be \
                     Broadcast, got {}",
                    cl.code(),
                    self.workload.multicast.code()
                )));
            }
        }
        // Generated destination sets of size zero cannot serve multicast
        // traffic (mirrors the explicit-set check below). Closed-loop
        // protocols multicast through the same destination sets, so they
        // need non-empty sets even at alpha = 0.
        let needs_sets = self.workload.alpha > 0.0 || self.workload.closed_loop.is_some();
        if needs_sets {
            let group = match self.workload.multicast {
                MulticastPattern::Random { group } | MulticastPattern::Localized { group } => {
                    Some(group)
                }
                MulticastPattern::Broadcast | MulticastPattern::Explicit { .. } => None,
            };
            if group == Some(0) {
                return Err(Error::InvalidScenario(format!(
                    "multicast group size 0 cannot serve {}",
                    if self.workload.closed_loop.is_some() {
                        "a closed-loop protocol's multicasts".to_string()
                    } else {
                        format!("alpha = {} > 0", self.workload.alpha)
                    }
                )));
            }
        }
        if let MulticastPattern::Explicit { sets } = &self.workload.multicast {
            let n = self.topology.num_nodes();
            if sets.len() != n {
                return Err(Error::InvalidScenario(format!(
                    "explicit destination sets cover {} nodes but {} has {n}",
                    sets.len(),
                    self.topology
                )));
            }
            if let Some(bad) = sets.iter().flatten().find(|&&d| d as usize >= n) {
                return Err(Error::InvalidScenario(format!(
                    "destination {bad} outside 0..{n}"
                )));
            }
            for (src, set) in sets.iter().enumerate() {
                if set.contains(&(src as u32)) {
                    return Err(Error::InvalidScenario(format!(
                        "node {src} lists itself in its own destination set"
                    )));
                }
                if needs_sets && set.is_empty() {
                    return Err(Error::InvalidScenario(format!(
                        "node {src} has an empty destination set but alpha = {} > 0",
                        self.workload.alpha
                    )));
                }
            }
        }
        Ok(())
    }

    fn alpha_valid(&self) -> bool {
        self.workload.alpha.is_finite() && (0.0..=1.0).contains(&self.workload.alpha)
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Parse from JSON.
    pub fn from_json(s: &str) -> Result<Self> {
        Ok(serde::json::from_str(s)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Scenario {
        Scenario::new(
            "test",
            TopologySpec::Quarc { n: 16 },
            WorkloadSpec::new(32, 0.05, MulticastPattern::Random { group: 4 }),
            SweepSpec::Explicit {
                rates: vec![0.002, 0.004],
            },
        )
        .with_sim(SimConfig::quick(1))
        .with_seed(7)
    }

    #[test]
    fn json_round_trip_is_identity() {
        let sc = small();
        let json = sc.to_json();
        let back = Scenario::from_json(&json).expect("round trip parses");
        assert_eq!(sc, back);
    }

    #[test]
    fn validation_catches_bad_specs() {
        let mut sc = small();
        sc.replicates = 0;
        assert!(matches!(sc.validate(), Err(Error::InvalidScenario(_))));

        let mut sc = small();
        sc.workload.alpha = 1.5;
        assert!(sc.validate().is_err());

        let mut sc = small();
        sc.sim.buffer_depth = 0;
        assert!(sc.validate().is_err());

        let mut sc = small();
        sc.workload.multicast = MulticastPattern::Explicit {
            sets: vec![vec![1], vec![0]],
        };
        assert!(sc.validate().is_err(), "sets must cover all 16 nodes");

        assert!(small().validate().is_ok());
    }

    #[test]
    fn explicit_set_edge_cases_are_typed_errors() {
        let full = |sets: Vec<Vec<u32>>| {
            let mut sc = small();
            sc.workload.multicast = MulticastPattern::Explicit { sets };
            sc
        };
        let mut ok_sets: Vec<Vec<u32>> = (0..16u32).map(|s| vec![(s + 1) % 16]).collect();
        assert!(full(ok_sets.clone()).validate().is_ok());

        // A node listing itself among its own destinations.
        ok_sets[3].push(3);
        assert!(matches!(
            full(ok_sets.clone()).validate(),
            Err(Error::InvalidScenario(_))
        ));
        ok_sets[3] = vec![4];

        // An out-of-range destination index.
        ok_sets[5] = vec![16];
        assert!(matches!(
            full(ok_sets.clone()).validate(),
            Err(Error::InvalidScenario(_))
        ));
        ok_sets[5] = vec![6];

        // An empty destination set is an error while alpha > 0 ...
        ok_sets[7] = Vec::new();
        let sc = full(ok_sets.clone());
        assert!(matches!(sc.validate(), Err(Error::InvalidScenario(_))));
        // ... and fine once the workload carries no multicast traffic.
        let mut sc = full(ok_sets);
        sc.workload.alpha = 0.0;
        assert!(sc.validate().is_ok());
    }

    #[test]
    fn zero_group_with_alpha_is_rejected_before_the_simulator_panics() {
        // Random/Localized sets of size 0 cannot serve alpha > 0; the
        // spec layer must reject them instead of letting SimPlan::build
        // assert deep inside a sweep.
        for multicast in [
            MulticastPattern::Random { group: 0 },
            MulticastPattern::Localized { group: 0 },
        ] {
            let mut sc = small();
            sc.workload.multicast = multicast;
            assert!(matches!(sc.validate(), Err(Error::InvalidScenario(_))));
            // Harmless once no multicast traffic is generated.
            sc.workload.alpha = 0.0;
            assert!(sc.validate().is_ok());
        }
    }

    #[test]
    fn trace_traffic_rejects_multi_point_sweeps() {
        let entries = vec![noc_workloads::TraceEntry {
            cycle: 1,
            node: 0,
            kind: noc_workloads::TraceKind::Multicast,
        }];
        let mut sc = small();
        sc.workload.traffic = TrafficSpec::trace(entries);
        // Two sweep points over a fixed schedule: rejected.
        assert!(matches!(sc.validate(), Err(Error::InvalidScenario(_))));
        // A single point is fine.
        sc.sweep = SweepSpec::Explicit { rates: vec![0.002] };
        assert!(sc.validate().is_ok());
        // Replicates never change a deterministic replay: N identical
        // runs would fake a zero-width confidence interval.
        sc.replicates = 3;
        assert!(matches!(sc.validate(), Err(Error::InvalidScenario(_))));
    }

    #[test]
    fn prototype_judges_onoff_peaks_against_swept_rates_not_the_placeholder() {
        // A peak rate below PROTOTYPE_RATE is realizable as long as every
        // *swept* rate stays below it; the internal placeholder must not
        // leak into validation.
        let mut sc = small();
        sc.workload.traffic = TrafficSpec::OnOff {
            burst_len: 2.0,
            peak_rate: 5e-6,
        };
        sc.sweep = SweepSpec::Explicit { rates: vec![1e-6] };
        assert!(sc.validate().is_ok());
        let topo = sc.topology.build().unwrap();
        let proto = sc
            .workload
            .prototype(topo.as_ref(), sc.seed)
            .expect("prototype must not judge the placeholder rate");
        assert!(proto.at_rate(1e-6).is_ok(), "swept rate below peak is fine");
        assert!(
            proto.at_rate(1e-5).is_err(),
            "a swept rate above the peak is the real error"
        );
    }

    #[test]
    fn traffic_specs_validate_and_round_trip() {
        let mut sc = small();
        sc.workload.traffic = TrafficSpec::OnOff {
            burst_len: 8.0,
            peak_rate: 0.25,
        };
        assert!(sc.validate().is_ok());
        let back = Scenario::from_json(&sc.to_json()).expect("round trip parses");
        assert_eq!(sc, back);

        sc.workload.traffic = TrafficSpec::OnOff {
            burst_len: 0.0,
            peak_rate: 0.25,
        };
        assert!(matches!(sc.validate(), Err(Error::Workload(_))));
    }

    #[test]
    fn pre_traffic_workload_specs_stay_readable() {
        // A WorkloadSpec persisted before the traffic subsystem has no
        // `traffic` key; it must parse as the geometric default.
        let json = r#"{
            "msg_len": 16,
            "alpha": 0.05,
            "multicast": {"Random": {"group": 4}},
            "unicast": "Uniform"
        }"#;
        let spec: WorkloadSpec = serde::json::from_str(json).expect("legacy spec parses");
        assert_eq!(spec.traffic, TrafficSpec::Geometric);
        assert_eq!(
            spec,
            WorkloadSpec::new(16, 0.05, MulticastPattern::Random { group: 4 })
        );
    }

    #[test]
    fn closed_loop_validation_rules() {
        let coh = ClosedLoopSpec::Coherence {
            window: 4,
            requests: 16,
            write_fraction: 0.3,
        };
        let closed = |sweep| {
            Scenario::new(
                "cl",
                TopologySpec::Quarc { n: 16 },
                WorkloadSpec::new(8, 0.0, MulticastPattern::Random { group: 4 })
                    .with_closed_loop(coh),
                sweep,
            )
        };
        // The placeholder sweep is the only accepted one.
        let ok = closed(SweepSpec::Explicit { rates: vec![0.0] });
        assert!(ok.validate().is_ok());
        for sweep in [
            SweepSpec::Explicit {
                rates: vec![0.0, 0.002],
            },
            SweepSpec::Explicit { rates: vec![0.002] },
            SweepSpec::figure_default(4),
            SweepSpec::Linear {
                lo: 0.001,
                hi: 0.01,
                points: 3,
            },
        ] {
            assert!(
                matches!(closed(sweep).validate(), Err(Error::InvalidScenario(_))),
                "a rate sweep over a closed loop must be rejected"
            );
        }

        // No open-loop traffic shaping, no rate-driven multicast mix.
        let mut sc = ok.clone();
        sc.workload.traffic = TrafficSpec::OnOff {
            burst_len: 4.0,
            peak_rate: 0.2,
        };
        assert!(matches!(sc.validate(), Err(Error::InvalidScenario(_))));
        let mut sc = ok.clone();
        sc.workload.traffic = TrafficSpec::trace(vec![noc_workloads::TraceEntry {
            cycle: 1,
            node: 0,
            kind: noc_workloads::TraceKind::Multicast,
        }]);
        assert!(matches!(sc.validate(), Err(Error::InvalidScenario(_))));
        let mut sc = ok.clone();
        sc.workload.alpha = 0.05;
        assert!(matches!(sc.validate(), Err(Error::InvalidScenario(_))));

        // Protocol parameters are checked through the spec layer.
        let mut sc = ok.clone();
        sc.workload.closed_loop = Some(ClosedLoopSpec::Coherence {
            window: 0,
            requests: 16,
            write_fraction: 0.3,
        });
        assert!(matches!(sc.validate(), Err(Error::InvalidScenario(_))));

        // Coherence multicasts through the destination sets: they must
        // be non-empty even though alpha is 0.
        let mut sc = ok.clone();
        sc.workload.multicast = MulticastPattern::Random { group: 0 };
        assert!(matches!(sc.validate(), Err(Error::InvalidScenario(_))));

        // The barrier's release must reach every node.
        let bar = ClosedLoopSpec::Barrier {
            rounds: 2,
            radix: 2,
            compute: 4,
        };
        let mut sc = ok.clone();
        sc.workload.closed_loop = Some(bar);
        assert!(
            matches!(sc.validate(), Err(Error::InvalidScenario(_))),
            "barrier over random sets must be rejected"
        );
        sc.workload.multicast = MulticastPattern::Broadcast;
        assert!(sc.validate().is_ok());
    }

    #[test]
    fn closed_loop_specs_round_trip_and_legacy_specs_stay_open_loop() {
        let sc = Scenario::new(
            "cl-rt",
            TopologySpec::Quarc { n: 16 },
            WorkloadSpec::new(8, 0.0, MulticastPattern::Broadcast).with_closed_loop(
                ClosedLoopSpec::Barrier {
                    rounds: 4,
                    radix: 2,
                    compute: 8,
                },
            ),
            SweepSpec::Explicit { rates: vec![0.0] },
        );
        let back = Scenario::from_json(&sc.to_json()).expect("round trip parses");
        assert_eq!(sc, back);

        // A WorkloadSpec persisted before closed loops has no
        // `closed_loop` key; it must parse as open-loop.
        let json = r#"{
            "msg_len": 16,
            "alpha": 0.05,
            "multicast": {"Random": {"group": 4}},
            "unicast": "Uniform"
        }"#;
        let spec: WorkloadSpec = serde::json::from_str(json).expect("legacy spec parses");
        assert_eq!(spec.closed_loop, None);
    }

    #[test]
    fn pattern_mismatch_is_a_typed_error() {
        // Bit reversal on a 12-node ring: neither square nor 2^d.
        let sc = Scenario::new(
            "bitrev-ring",
            TopologySpec::Ring { n: 12 },
            WorkloadSpec::new(8, 0.0, MulticastPattern::Broadcast)
                .with_unicast(UnicastPattern::BitReversal),
            SweepSpec::Explicit { rates: vec![0.001] },
        );
        let topo = sc.topology.build().unwrap();
        match sc.workload.prototype(topo.as_ref(), 1) {
            Err(Error::Pattern(noc_workloads::PatternError::RequiresPowerOfTwo { .. })) => {}
            other => panic!("expected Error::Pattern, got {other:?}"),
        }
    }

    #[test]
    fn sweeps_resolve_on_a_topology() {
        let sc = small();
        let topo = sc.topology.build().unwrap();
        let proto = sc.workload.prototype(topo.as_ref(), sc.seed).unwrap();
        let explicit = sc
            .sweep
            .resolve(topo.as_ref(), &proto, ModelOptions::default())
            .unwrap();
        assert_eq!(explicit.rates(), &[0.002, 0.004]);

        let span = SweepSpec::figure_default(5)
            .resolve(topo.as_ref(), &proto, ModelOptions::default())
            .unwrap();
        assert_eq!(span.len(), 5);
        assert!(span.rates()[0] > 0.0);
        assert!((span.rates()[4] / span.rates()[0] - 1.02 / 0.15).abs() < 1e-9);

        let fracs = SweepSpec::SaturationFractions {
            fractions: vec![0.3, 0.6],
        }
        .resolve(topo.as_ref(), &proto, ModelOptions::default())
        .unwrap();
        assert_eq!(fracs.len(), 2);
        assert!((fracs.rates()[1] / fracs.rates()[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn bad_sweep_spec_surfaces_as_typed_error() {
        let sc = small();
        let topo = sc.topology.build().unwrap();
        let proto = sc.workload.prototype(topo.as_ref(), sc.seed).unwrap();
        let err = (SweepSpec::Linear {
            lo: 0.5,
            hi: 0.1,
            points: 4,
        })
        .resolve(topo.as_ref(), &proto, ModelOptions::default())
        .unwrap_err();
        assert!(matches!(err, Error::Sweep(_)));
    }

    #[test]
    fn patterns_materialize() {
        let topo = TopologySpec::Ring { n: 8 }.build().unwrap();
        let bc = MulticastPattern::Broadcast.build(topo.as_ref(), 1);
        assert_eq!(bc.set(NodeId(0)).len(), 7);
        let ex = MulticastPattern::Explicit {
            sets: vec![vec![1]; 8],
        }
        .build(topo.as_ref(), 1);
        assert_eq!(ex.set(NodeId(2)), &[NodeId(1)]);
        let r = MulticastPattern::Random { group: 3 }.build(topo.as_ref(), 9);
        assert_eq!(r.set(NodeId(5)).len(), 3);
    }
}
