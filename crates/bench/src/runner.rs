//! Scenario execution: one engine for every experiment in the workspace.
//!
//! [`Runner`] turns a declarative [`Scenario`] into a [`ScenarioResult`]:
//!
//! * builds the topology through the registry and the workload prototype
//!   from the scenario's master seed;
//! * resolves the sweep (evaluating the analytical saturation point for
//!   saturation-relative sweeps);
//! * builds **one** [`SimPlan`] per scenario and shares it across every
//!   sweep point, replicate and worker thread;
//! * executes all `(rate, replicate)` jobs on a bounded worker pool with
//!   dynamic load balancing, reporting completion through an optional
//!   progress callback;
//! * overlays the analytical model's prediction at every rate when the
//!   scenario requests it;
//! * exposes structured sinks: an aligned terminal table, CSV, and a JSON
//!   document embedding the scenario spec next to its results.
//!
//! Execution is deterministic in the scenario: thread count and progress
//! callbacks never change results.

use crate::error::{Error, Result};
use crate::scenario::Scenario;
use noc_sim::{build_engine_with_plan, LogHistogram, SimPlan, SimResults};
use noc_topology::NodeId;
use noc_workloads::parallel::{effective_threads, parallel_map};
use noc_workloads::table::{fmt_latency, Table};
use quarc_core::{BackendSpec, ModelBackend, NetworkCalculusBackend};
use serde::{Deserialize, Serialize};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// One completed `(rate, replicate)` job, reported to progress callbacks.
#[derive(Clone, Debug)]
pub struct Progress {
    /// The scenario's name.
    pub scenario: String,
    /// Jobs completed so far (including this one).
    pub completed: usize,
    /// Total jobs (`sweep points × replicates`).
    pub total: usize,
    /// The generation rate of the finished job.
    pub rate: f64,
    /// The replicate index of the finished job.
    pub replicate: u32,
}

/// One operating point of a scenario: analytical prediction (when the
/// overlay is enabled) and across-replicate simulation measurement.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Generation rate (messages/node/cycle).
    pub rate: f64,
    /// Mean-prediction unicast latency from the scenario's selected
    /// backend (`NaN` beyond that backend's saturation or without an
    /// overlay).
    pub model_unicast: f64,
    /// Mean-prediction multicast latency from the scenario's selected
    /// backend (`NaN` beyond that backend's saturation or without an
    /// overlay).
    pub model_multicast: f64,
    /// Worst-case unicast latency bound from the network-calculus
    /// backend, evaluated alongside the mean overlay (`NaN` without an
    /// overlay or past the calculus stability horizon). Wherever finite,
    /// `bound ≥ simulated mean` is the cross-validation invariant.
    pub bound_unicast: f64,
    /// Worst-case multicast latency bound from the network-calculus
    /// backend (`NaN` without an overlay or past the calculus stability
    /// horizon).
    pub bound_multicast: f64,
    /// Is the analytical overlay inside its applicability domain? `false`
    /// when the scenario's traffic spec is not the memoryless (Poisson)
    /// process the model assumes, or when its routing scheme's streams
    /// are not the asynchronous per-port wormholes of Eq. 8–16
    /// (`Multipath`, `UnicastTree`) — the overlay is still evaluated (the
    /// divergence
    /// *is* the measurement, see `fig-burstiness`/`fig-routing`), but its
    /// numbers must not be read as predictions.
    pub model_applicable: bool,
    /// Simulated unicast latency (mean over replicates).
    pub sim_unicast: f64,
    /// Simulated multicast latency (mean over replicates).
    pub sim_multicast: f64,
    /// 95% CI half-width of the simulated multicast latency: batch-means
    /// within the single run for `replicates == 1`, across replicate
    /// means otherwise.
    pub sim_multicast_ci: f64,
    /// Streaming-histogram median of the point's primary latency
    /// population (multicast for open-loop scenarios, request completion
    /// for closed-loop), merged across replicates before the quantile is
    /// taken — not averaged per replicate. `NaN` when the population is
    /// empty (e.g. a fully saturated point).
    pub sim_p50: f64,
    /// 95th percentile of the merged primary latency histogram.
    pub sim_p95: f64,
    /// 99th percentile of the merged primary latency histogram.
    pub sim_p99: f64,
    /// Replicates of this point served from the result cache.
    pub cache_hits: u64,
    /// Replicates of this point actually simulated.
    pub cache_misses: u64,
    /// Wall-clock spent producing this point, summed over replicates
    /// (milliseconds; cache hits contribute their read-and-parse time).
    /// Run accounting, not a result: reported in
    /// [`ScenarioResult::summary`] but excluded from serialization, so
    /// persisted sinks stay byte-identical across hosts, thread counts
    /// and re-runs (files deserialize it as `NaN`).
    pub wall_ms: f64,
    /// Simulator saturation flag (any replicate).
    pub sim_saturated: bool,
}

// Hand-written to keep the persisted form deterministic: every field is
// a function of the scenario except `wall_ms`, which is wall-clock and
// is deliberately left out — the structured JSON sink is byte-compared
// across runs by the round-trip suite.
impl serde::Serialize for PointResult {
    fn to_value(&self) -> serde::Value {
        serde::Value::Map(vec![
            ("rate".into(), self.rate.to_value()),
            ("model_unicast".into(), self.model_unicast.to_value()),
            ("model_multicast".into(), self.model_multicast.to_value()),
            ("bound_unicast".into(), self.bound_unicast.to_value()),
            ("bound_multicast".into(), self.bound_multicast.to_value()),
            ("model_applicable".into(), self.model_applicable.to_value()),
            ("sim_unicast".into(), self.sim_unicast.to_value()),
            ("sim_multicast".into(), self.sim_multicast.to_value()),
            ("sim_multicast_ci".into(), self.sim_multicast_ci.to_value()),
            ("sim_p50".into(), self.sim_p50.to_value()),
            ("sim_p95".into(), self.sim_p95.to_value()),
            ("sim_p99".into(), self.sim_p99.to_value()),
            ("cache_hits".into(), self.cache_hits.to_value()),
            ("cache_misses".into(), self.cache_misses.to_value()),
            ("sim_saturated".into(), self.sim_saturated.to_value()),
        ])
    }
}

// Hand-written so older persisted results stay readable: files from
// before the traffic subsystem lack `model_applicable` (every one ran
// Poisson traffic, where the overlay always applies), files from before
// the backend refactor lack the calculus bounds (absent = never computed
// = `NaN`, exactly how a disabled overlay reports), and files from
// before the flight recorder lack the quantile and run-accounting
// columns (quantiles were never taken = `NaN`; a run that predates cache
// accounting recorded zero of either outcome).
impl serde::Deserialize for PointResult {
    fn from_value(v: &serde::Value) -> std::result::Result<Self, serde::Error> {
        let f = |name| serde::de::field(v, "PointResult", name);
        let opt_nan = |name| match v.get(name) {
            Some(x) => serde::Deserialize::from_value(x),
            None => Ok(f64::NAN),
        };
        let opt_zero = |name| match v.get(name) {
            Some(x) => serde::Deserialize::from_value(x),
            None => Ok(0u64),
        };
        Ok(PointResult {
            rate: serde::Deserialize::from_value(f("rate")?)?,
            model_unicast: serde::Deserialize::from_value(f("model_unicast")?)?,
            model_multicast: serde::Deserialize::from_value(f("model_multicast")?)?,
            bound_unicast: opt_nan("bound_unicast")?,
            bound_multicast: opt_nan("bound_multicast")?,
            model_applicable: match v.get("model_applicable") {
                Some(b) => serde::Deserialize::from_value(b)?,
                None => true,
            },
            sim_unicast: serde::Deserialize::from_value(f("sim_unicast")?)?,
            sim_multicast: serde::Deserialize::from_value(f("sim_multicast")?)?,
            sim_multicast_ci: serde::Deserialize::from_value(f("sim_multicast_ci")?)?,
            sim_p50: opt_nan("sim_p50")?,
            sim_p95: opt_nan("sim_p95")?,
            sim_p99: opt_nan("sim_p99")?,
            cache_hits: opt_zero("cache_hits")?,
            cache_misses: opt_zero("cache_misses")?,
            wall_ms: opt_nan("wall_ms")?,
            sim_saturated: serde::Deserialize::from_value(f("sim_saturated")?)?,
        })
    }
}

impl PointResult {
    /// Relative model error on unicast latency, when both sides are finite.
    pub fn unicast_error(&self) -> Option<f64> {
        rel_err(self.model_unicast, self.sim_unicast)
    }

    /// Relative model error on multicast latency.
    pub fn multicast_error(&self) -> Option<f64> {
        rel_err(self.model_multicast, self.sim_multicast)
    }
}

fn rel_err(model: f64, sim: f64) -> Option<f64> {
    (model.is_finite() && sim.is_finite() && sim > 0.0).then(|| (model - sim).abs() / sim)
}

/// Complete results of one scenario run: the spec that produced them, the
/// aggregated latency curve and the full per-replicate simulator output.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ScenarioResult {
    /// The scenario exactly as executed.
    pub scenario: Scenario,
    /// Aggregated model/simulation curve, one entry per sweep rate.
    pub points: Vec<PointResult>,
    /// Full simulator output, `sims[point][replicate]` — histograms,
    /// per-source latencies, conservation counters, utilisation.
    pub sims: Vec<Vec<SimResults>>,
}

impl ScenarioResult {
    /// Render the latency curve as a table (one row per rate), in the
    /// format of the paper's figure panels.
    pub fn table(&self) -> Table {
        let mut t = Table::new(vec![
            "rate",
            "model_uni",
            "sim_uni",
            "err_uni%",
            "model_mc",
            "sim_mc",
            "mc_ci95",
            "err_mc%",
            "sim_sat",
        ]);
        for p in &self.points {
            t.push_row(vec![
                format!("{:.5}", p.rate),
                fmt_latency(p.model_unicast),
                fmt_latency(p.sim_unicast),
                p.unicast_error()
                    .map(|e| format!("{:.1}", e * 100.0))
                    .unwrap_or_else(|| "-".into()),
                fmt_latency(p.model_multicast),
                fmt_latency(p.sim_multicast),
                if p.sim_multicast_ci.is_finite() {
                    format!("{:.2}", p.sim_multicast_ci)
                } else {
                    "-".into()
                },
                p.multicast_error()
                    .map(|e| format!("{:.1}", e * 100.0))
                    .unwrap_or_else(|| "-".into()),
                if p.sim_saturated { "yes" } else { "no" }.into(),
            ]);
        }
        t
    }

    /// Render the worst-case-bound curve as a table (one row per rate):
    /// the network-calculus bound against the simulated mean, with the
    /// `bound ≥ sim` cross-validation verdict per row (`-` where either
    /// side is unavailable). Kept separate from [`ScenarioResult::table`],
    /// whose column set is golden-locked.
    pub fn bounds_table(&self) -> Table {
        let mut t = Table::new(vec![
            "rate",
            "bound_uni",
            "sim_uni",
            "bound_mc",
            "sim_mc",
            "mc_ci95",
            "sim_sat",
            "bound_ok",
        ]);
        for p in &self.points {
            let ok = |bound: f64, sim: f64| {
                if bound.is_finite() && sim.is_finite() {
                    Some(bound >= sim)
                } else {
                    None
                }
            };
            let verdict = match (
                ok(p.bound_unicast, p.sim_unicast),
                ok(p.bound_multicast, p.sim_multicast),
            ) {
                (None, None) => "-".into(),
                (u, m) => {
                    if u != Some(false) && m != Some(false) {
                        "yes".into()
                    } else {
                        "NO".to_string()
                    }
                }
            };
            t.push_row(vec![
                format!("{:.5}", p.rate),
                fmt_latency(p.bound_unicast),
                fmt_latency(p.sim_unicast),
                fmt_latency(p.bound_multicast),
                fmt_latency(p.sim_multicast),
                if p.sim_multicast_ci.is_finite() {
                    format!("{:.2}", p.sim_multicast_ci)
                } else {
                    "-".into()
                },
                if p.sim_saturated { "yes" } else { "no" }.into(),
                verdict,
            ]);
        }
        t
    }

    /// Render the tail-latency curve as a table (one row per rate): the
    /// streaming-histogram quantiles of the primary latency population
    /// (multicast completion for open-loop scenarios, request completion
    /// for closed-loop), merged across replicates. Kept separate from
    /// [`ScenarioResult::table`], whose column set is golden-locked.
    pub fn quantiles_table(&self) -> Table {
        let mut t = Table::new(vec!["rate", "sim_mean", "p50", "p95", "p99", "sim_sat"]);
        for p in &self.points {
            t.push_row(vec![
                format!("{:.5}", p.rate),
                fmt_latency(p.sim_multicast),
                fmt_latency(p.sim_p50),
                fmt_latency(p.sim_p95),
                fmt_latency(p.sim_p99),
                if p.sim_saturated { "yes" } else { "no" }.into(),
            ]);
        }
        t
    }

    /// Render the engine-counter curve as a table (one row per rate):
    /// the event engine's internal work counters, summed over the
    /// point's replicates. Cycle-engine replicates contribute only
    /// `sim_cycles` (their other counters are structurally zero).
    pub fn engine_table(&self) -> Table {
        let mut t = Table::new(vec![
            "rate",
            "sim_cycles",
            "events",
            "spans",
            "span_cycles",
            "stall_fixpoints",
            "failed_scans",
        ]);
        for (p, sims) in self.points.iter().zip(&self.sims) {
            let sum = |f: &dyn Fn(&SimResults) -> u64| sims.iter().map(f).sum::<u64>();
            t.push_row(vec![
                format!("{:.5}", p.rate),
                sum(&|r| r.engine.simulated_cycles).to_string(),
                sum(&|r| r.engine.events_popped).to_string(),
                sum(&|r| r.engine.spans_batched).to_string(),
                sum(&|r| r.engine.span_cycles).to_string(),
                sum(&|r| r.engine.stall_fixpoints).to_string(),
                sum(&|r| r.engine.span_scans_failed).to_string(),
            ]);
        }
        t
    }

    /// One-paragraph run accounting for terminal output: job counts,
    /// cache hits/misses and total wall-clock. This is the only sink
    /// that reports wall time — the CSV/JSON tables stay byte-identical
    /// across hosts and thread counts.
    pub fn summary(&self) -> String {
        let hits: u64 = self.points.iter().map(|p| p.cache_hits).sum();
        let misses: u64 = self.points.iter().map(|p| p.cache_misses).sum();
        let wall_ms: f64 = self.points.iter().map(|p| p.wall_ms).sum();
        format!(
            "{}: {} points x {} replicates, {} cached / {} simulated, {:.1} ms sim wall-clock",
            self.scenario.name,
            self.points.len(),
            self.scenario.replicates,
            hits,
            misses,
            wall_ms
        )
    }

    /// The latency curve as CSV.
    pub fn to_csv(&self) -> String {
        self.table().to_csv()
    }

    /// The full result (scenario spec + curve + simulator detail) as
    /// pretty JSON.
    pub fn to_json(&self) -> String {
        serde::json::to_string_pretty(self)
    }

    /// Write the CSV sink as `<dir>/<name>.csv`, creating `dir` if needed.
    pub fn write_csv(&self, dir: impl AsRef<Path>) -> Result<PathBuf> {
        self.write_sink(dir, "csv", &self.to_csv())
    }

    /// Write the JSON sink as `<dir>/<name>.json`, creating `dir` if
    /// needed.
    pub fn write_json(&self, dir: impl AsRef<Path>) -> Result<PathBuf> {
        self.write_sink(dir, "json", &self.to_json())
    }

    /// Write the tail-latency CSV as `<dir>/<name>-quantiles.csv`.
    pub fn write_quantiles_csv(&self, dir: impl AsRef<Path>) -> Result<PathBuf> {
        self.write_named(dir, "-quantiles.csv", &self.quantiles_table().to_csv())
    }

    /// Write the engine-counter CSV as `<dir>/<name>-engine.csv`.
    pub fn write_engine_csv(&self, dir: impl AsRef<Path>) -> Result<PathBuf> {
        self.write_named(dir, "-engine.csv", &self.engine_table().to_csv())
    }

    fn write_sink(&self, dir: impl AsRef<Path>, ext: &str, contents: &str) -> Result<PathBuf> {
        self.write_named(dir, &format!(".{ext}"), contents)
    }

    fn write_named(&self, dir: impl AsRef<Path>, suffix: &str, contents: &str) -> Result<PathBuf> {
        std::fs::create_dir_all(dir.as_ref())?;
        let path = dir.as_ref().join(format!("{}{suffix}", self.scenario.name));
        std::fs::write(&path, contents)?;
        Ok(path)
    }
}

type ProgressFn = dyn Fn(&Progress) + Send + Sync;

// FNV-1a-64: small, dependency-free, stable across platforms — the cache
// key only needs collision resistance against *accidental* spec overlap.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a(h: u64, bytes: &[u8]) -> u64 {
    bytes
        .iter()
        .fold(h, |h, &b| (h ^ b as u64).wrapping_mul(FNV_PRIME))
}

/// Content address of one `(scenario, rate, replicate)` simulation job.
/// The scenario is keyed by its canonical JSON with the display name
/// cleared, so renaming an experiment never invalidates its cache.
fn point_key(spec_json: &str, rate: f64, rep: u32) -> u64 {
    let h = fnv1a(FNV_OFFSET, spec_json.as_bytes());
    let h = fnv1a(h, &rate.to_bits().to_le_bytes());
    fnv1a(h, &rep.to_le_bytes())
}

/// Executes [`Scenario`]s. Construction is cheap; a runner holds no
/// scenario state and can be reused across scenarios.
#[derive(Default)]
pub struct Runner {
    threads: usize,
    progress: Option<Arc<ProgressFn>>,
    cache: Option<PathBuf>,
}

impl Runner {
    /// A runner using every available core and no progress reporting.
    pub fn new() -> Self {
        Runner::default()
    }

    /// Use up to `threads` workers (0 = all available cores).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Content-addressed result cache: store every simulated point in
    /// `dir` keyed by FNV-1a-64 over (scenario spec, rate, replicate) and
    /// skip the simulation on re-runs that hit. `None` disables (the
    /// figure binaries' `--no-cache`). The model overlay is never cached:
    /// it is cheap, deterministic and re-evaluated every run.
    pub fn cache(mut self, dir: Option<PathBuf>) -> Self {
        self.cache = dir;
        self
    }

    /// Install a progress callback, invoked from worker threads once per
    /// completed `(rate, replicate)` job.
    pub fn on_progress(mut self, f: impl Fn(&Progress) + Send + Sync + 'static) -> Self {
        self.progress = Some(Arc::new(f));
        self
    }

    /// Execute a scenario end-to-end.
    pub fn run(&self, sc: &Scenario) -> Result<ScenarioResult> {
        sc.validate()?;
        let (topo, proto) = sc.materialize()?;
        let model_opts = sc.model.unwrap_or_default();
        let closed = sc.workload.closed_loop;
        // Closed-loop runs have no generation rate to sweep: validation
        // pinned the spec to the single placeholder 0.0, which never
        // resolves through a saturation model.
        let rates: Vec<f64> = if closed.is_some() {
            vec![0.0]
        } else {
            let sweep = sc.sweep.resolve(topo.as_ref(), &proto, model_opts)?;
            for &rate in sweep.rates() {
                if rate >= 1.0 {
                    return Err(Error::InvalidScenario(format!(
                        "resolved sweep rate {rate} is not below 1 message/node/cycle"
                    )));
                }
            }
            sweep.rates().to_vec()
        };

        // One plan for the whole sweep: unicast paths, multicast streams
        // and absorb schedules depend only on (topology, destination sets).
        let plan = SimPlan::build(topo.as_ref(), &proto)?;

        // The cache key covers everything a simulated point depends on
        // except the display name (cleared: renames must hit).
        let cache_base: Option<(&Path, String)> = match &self.cache {
            Some(dir) => {
                std::fs::create_dir_all(dir)?;
                let mut keyed = sc.clone();
                keyed.name = String::new();
                Some((dir.as_path(), keyed.to_json()))
            }
            None => None,
        };

        let jobs: Vec<(f64, u32)> = rates
            .iter()
            .flat_map(|&rate| (0..sc.replicates).map(move |rep| (rate, rep)))
            .collect();
        let total = jobs.len();
        let completed = AtomicUsize::new(0);

        let samples = parallel_map(&jobs, effective_threads(self.threads), |&(rate, rep)| {
            let wl = proto.at_rate(rate)?;
            // The overlay is rate- but not replicate-dependent: evaluate
            // it once, on the first replicate. The selected backend gives
            // the mean prediction; the network-calculus backend is
            // additionally evaluated for the worst-case bound (shared
            // when it *is* the selected backend). Closed-loop runs skip
            // the overlay entirely: the model has no notion of
            // delivery-triggered injections.
            let nan2 = (f64::NAN, f64::NAN);
            let (model, bound) = match sc.model {
                Some(mo) if rep == 0 && closed.is_none() => {
                    let eval = |b: &dyn ModelBackend| match b.evaluate(topo.as_ref(), &wl, &mo) {
                        Ok(p) => (p.unicast_latency, p.multicast_latency),
                        Err(_) => nan2,
                    };
                    let model = eval(mo.backend.backend());
                    let bound = if mo.backend == BackendSpec::NetworkCalculus {
                        model
                    } else {
                        eval(&NetworkCalculusBackend)
                    };
                    (model, bound)
                }
                _ => (nan2, nan2),
            };
            let mut cfg = sc.sim;
            cfg.seed = sc.seed.wrapping_add(rep as u64);
            let cache_path = cache_base
                .as_ref()
                .map(|(dir, json)| dir.join(format!("{:016x}.json", point_key(json, rate, rep))));
            // A hit must parse back into SimResults; a corrupt or
            // truncated file falls through to recomputation (and is then
            // overwritten with a fresh copy).
            let t0 = Instant::now();
            let cached: Option<SimResults> = cache_path
                .as_ref()
                .and_then(|p| std::fs::read_to_string(p).ok())
                .and_then(|s| serde::json::from_str(&s).ok());
            let cache_hit = cached.is_some();
            let res = match cached {
                Some(res) => res,
                None => {
                    let mut engine =
                        build_engine_with_plan(topo.as_ref(), &wl, cfg, Arc::clone(&plan));
                    if let Some(spec) = &closed {
                        engine.install_closed_loop(spec, cfg.seed);
                    }
                    let res = engine.run();
                    if let Some(p) = &cache_path {
                        // Best-effort: a failed cache write must not fail
                        // the run that produced the result.
                        let _ = std::fs::write(p, serde::json::to_string_pretty(&res));
                    }
                    res
                }
            };
            let wall_ns = t0.elapsed().as_nanos() as u64;
            if let Some(cb) = &self.progress {
                cb(&Progress {
                    scenario: sc.name.clone(),
                    completed: completed.fetch_add(1, Ordering::Relaxed) + 1,
                    total,
                    rate,
                    replicate: rep,
                });
            }
            Ok::<_, Error>(JobSample {
                model,
                bound,
                res,
                wall_ns,
                cache_hit,
            })
        });

        let mut flat = Vec::with_capacity(samples.len());
        for s in samples {
            flat.push(s?);
        }

        let reps = sc.replicates as usize;
        // Overlays evaluated outside the selected backend's assumption
        // domain (e.g. M/G/1 under bursty traffic or `Multipath`/
        // `UnicastTree` streams) are annotated as out-of-domain. A
        // closed-loop run is categorically outside every backend: the
        // model's Poisson sources do not exist.
        let model_applicable = closed.is_none()
            && model_opts
                .backend
                .backend()
                .applicable(topo.as_ref(), &proto);
        let mut points = Vec::with_capacity(rates.len());
        let mut sims: Vec<Vec<SimResults>> = Vec::with_capacity(rates.len());
        for (i, &rate) in rates.iter().enumerate() {
            let group = &flat[i * reps..(i + 1) * reps];
            points.push(aggregate(rate, group, model_applicable));
            sims.push(group.iter().map(|s| s.res.clone()).collect());
        }

        Ok(ScenarioResult {
            scenario: sc.clone(),
            points,
            sims,
        })
    }

    /// Measure the latency of one isolated multicast operation from
    /// `source` on an otherwise idle network described by `sc` (the
    /// sweep is ignored; the scenario's multicast pattern defines the
    /// operation).
    pub fn isolated_multicast(&self, sc: &Scenario, source: NodeId) -> Result<u64> {
        sc.validate()?;
        let (topo, proto) = sc.materialize()?;
        let idle = proto.at_rate(0.0)?;
        let plan = SimPlan::build(topo.as_ref(), &idle)?;
        let mut cfg = sc.sim;
        cfg.seed = sc.seed;
        let mut engine = build_engine_with_plan(topo.as_ref(), &idle, cfg, plan);
        Ok(engine.measure_isolated_multicast(source))
    }
}

/// One completed `(rate, replicate)` job: the analytical overlays
/// (evaluated on replicate 0 only, `NaN` elsewhere) and the simulator
/// output.
struct JobSample {
    /// Selected-backend mean prediction `(unicast, multicast)`.
    model: (f64, f64),
    /// Network-calculus worst-case bound `(unicast, multicast)`.
    bound: (f64, f64),
    res: SimResults,
    /// Wall-clock of the cached-or-simulated block, nanoseconds.
    wall_ns: u64,
    /// Did the result-cache serve this job?
    cache_hit: bool,
}

impl std::fmt::Debug for JobSample {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("JobSample")
            .field("model", &self.model)
            .field("bound", &self.bound)
            .finish_non_exhaustive()
    }
}

/// Merge the replicates' primary latency histograms — request completion
/// for closed-loop runs, multicast completion otherwise — into one
/// population, so quantiles are taken over the pooled samples (quantiles,
/// unlike means, do not average across replicates).
fn merged_hist(group: &[JobSample]) -> LogHistogram {
    let mut h = LogHistogram::new();
    for s in group {
        match &s.res.closed_loop {
            Some(cl) => h.merge(&cl.completion_hist),
            None => h.merge(&s.res.latency_hists.multicast),
        }
    }
    h
}

/// Collapse one sweep rate's replicates into a [`PointResult`]. A single
/// replicate passes through exactly (no re-aggregation); multiple
/// replicates report the across-replicate mean with a normal-theory CI
/// over the replicate means. Quantiles always come from the *pooled*
/// latency histogram, and the cache/wall accounting sums over the group.
fn aggregate(rate: f64, group: &[JobSample], model_applicable: bool) -> PointResult {
    let first = &group[0];
    let (model_unicast, model_multicast) = first.model;
    let (bound_unicast, bound_multicast) = first.bound;
    let hist = merged_hist(group);
    let cache_hits = group.iter().filter(|s| s.cache_hit).count() as u64;
    let cache_misses = group.len() as u64 - cache_hits;
    let wall_ms = group.iter().map(|s| s.wall_ns).sum::<u64>() as f64 / 1e6;
    if group.len() == 1 {
        return PointResult {
            rate,
            model_unicast,
            model_multicast,
            bound_unicast,
            bound_multicast,
            model_applicable,
            sim_unicast: first.res.unicast.mean,
            sim_multicast: first.res.multicast.mean,
            sim_multicast_ci: first.res.multicast.ci95,
            sim_p50: hist.p50(),
            sim_p95: hist.p95(),
            sim_p99: hist.p99(),
            cache_hits,
            cache_misses,
            wall_ms,
            sim_saturated: first.res.saturated,
        };
    }
    let n = group.len() as f64;
    let mean = |f: &dyn Fn(&SimResults) -> f64| group.iter().map(|s| f(&s.res)).sum::<f64>() / n;
    let sim_unicast = mean(&|r| r.unicast.mean);
    let sim_multicast = mean(&|r| r.multicast.mean);
    let var = group
        .iter()
        .map(|s| (s.res.multicast.mean - sim_multicast).powi(2))
        .sum::<f64>()
        / (n - 1.0);
    PointResult {
        rate,
        model_unicast,
        model_multicast,
        bound_unicast,
        bound_multicast,
        model_applicable,
        sim_unicast,
        sim_multicast,
        sim_multicast_ci: 1.96 * (var / n).sqrt(),
        sim_p50: hist.p50(),
        sim_p95: hist.p95(),
        sim_p99: hist.p99(),
        cache_hits,
        cache_misses,
        wall_ms,
        sim_saturated: group.iter().any(|s| s.res.saturated),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::{MulticastPattern, SweepSpec, WorkloadSpec};
    use noc_sim::SimConfig;
    use noc_topology::TopologySpec;
    use std::sync::atomic::AtomicU32;

    fn quick_scenario() -> Scenario {
        Scenario::new(
            "runner-test",
            TopologySpec::Quarc { n: 16 },
            WorkloadSpec::new(16, 0.05, MulticastPattern::Random { group: 4 }),
            SweepSpec::Explicit {
                rates: vec![0.002, 0.004],
            },
        )
        .with_sim(SimConfig::quick(3))
        .with_seed(3)
    }

    #[test]
    fn runs_a_scenario_end_to_end() {
        let sc = quick_scenario();
        let res = Runner::new().threads(2).run(&sc).expect("scenario runs");
        assert_eq!(res.points.len(), 2);
        assert_eq!(res.sims.len(), 2);
        for p in &res.points {
            assert!(!p.sim_saturated);
            let e = p.multicast_error().expect("both sides finite");
            assert!(e < 0.15, "model within 15% at low load, got {e}");
            // The streaming quantiles ride along on every point, ordered
            // and bracketing the multicast population sensibly.
            assert!(p.sim_p50.is_finite() && p.sim_p99.is_finite());
            assert!(p.sim_p50 <= p.sim_p95 && p.sim_p95 <= p.sim_p99);
            assert!(p.sim_p99 >= p.sim_multicast, "P99 dominates the mean");
            assert_eq!(p.cache_hits, 0, "no cache configured");
            assert_eq!(p.cache_misses, 1);
            assert!(p.wall_ms > 0.0);
        }
        let csv = res.to_csv();
        assert_eq!(csv.lines().count(), 3);
        let qcsv = res.quantiles_table().to_csv();
        assert_eq!(qcsv.lines().count(), 3, "header + one row per rate");
        assert!(qcsv.starts_with("rate,sim_mean,p50,p95,p99,sim_sat"));
        let ecsv = res.engine_table().to_csv();
        assert_eq!(ecsv.lines().count(), 3);
        let summary = res.summary();
        assert!(summary.contains("0 cached / 2 simulated"), "{summary}");
    }

    #[test]
    fn results_are_thread_count_invariant() {
        let sc = quick_scenario();
        let a = Runner::new().threads(1).run(&sc).unwrap();
        let b = Runner::new().threads(4).run(&sc).unwrap();
        assert_eq!(a.to_csv(), b.to_csv());
    }

    #[test]
    fn progress_callback_sees_every_job() {
        let sc = quick_scenario().with_replicates(2);
        let hits = Arc::new(AtomicU32::new(0));
        let h = Arc::clone(&hits);
        let res = Runner::new()
            .threads(2)
            .on_progress(move |p| {
                h.fetch_add(1, Ordering::Relaxed);
                assert_eq!(p.total, 4);
                assert_eq!(p.scenario, "runner-test");
            })
            .run(&sc)
            .unwrap();
        assert_eq!(hits.load(Ordering::Relaxed), 4);
        assert_eq!(res.sims[0].len(), 2, "both replicates retained");
    }

    #[test]
    fn replicates_tighten_the_estimate_and_flag_any_saturation() {
        let sc = quick_scenario().with_replicates(3);
        let res = Runner::new().threads(3).run(&sc).unwrap();
        for (p, sims) in res.points.iter().zip(&res.sims) {
            assert_eq!(sims.len(), 3);
            let manual: f64 = sims.iter().map(|s| s.multicast.mean).sum::<f64>() / 3.0;
            assert!((p.sim_multicast - manual).abs() < 1e-12);
            assert!(p.sim_multicast_ci.is_finite());
        }
        // Distinct replicate seeds must yield distinct runs.
        assert_ne!(
            res.sims[0][0].multicast.mean, res.sims[0][1].multicast.mean,
            "replicates must not repeat the same stream"
        );
    }

    #[test]
    fn model_overlay_is_flagged_under_non_poisson_traffic() {
        use noc_workloads::TrafficSpec;
        let sc = quick_scenario();
        let res = Runner::new().run(&sc).unwrap();
        assert!(res.points.iter().all(|p| p.model_applicable));

        let mut sc = quick_scenario();
        sc.workload.traffic = TrafficSpec::OnOff {
            burst_len: 8.0,
            peak_rate: 0.2,
        };
        let res = Runner::new().run(&sc).unwrap();
        for p in &res.points {
            assert!(!p.model_applicable, "bursty traffic is outside the model");
            // The overlay is still evaluated — divergence is the point.
            assert!(p.model_multicast.is_finite());
        }
    }

    #[test]
    fn calculus_bound_dominates_simulation() {
        let sc = quick_scenario();
        let res = Runner::new().run(&sc).unwrap();
        let finite = res
            .points
            .iter()
            .filter(|p| p.bound_multicast.is_finite())
            .count();
        assert!(finite >= 1, "some point must carry a finite bound");
        for p in &res.points {
            if !p.sim_saturated {
                if p.bound_multicast.is_finite() {
                    assert!(
                        p.bound_multicast >= p.sim_multicast,
                        "rate {}: bound {} below simulated mean {}",
                        p.rate,
                        p.bound_multicast,
                        p.sim_multicast
                    );
                }
                if p.bound_unicast.is_finite() {
                    assert!(p.bound_unicast >= p.sim_unicast);
                }
            }
        }
        let bt = res.bounds_table().to_csv();
        assert_eq!(bt.lines().count(), 3, "header + one row per rate");
        assert!(!bt.contains(",NO"), "no bound violations:\n{bt}");
    }

    #[test]
    fn nc_backend_anchors_multipath_saturation_sweeps() {
        use noc_topology::RoutingSpec;
        use quarc_core::{BackendSpec, ModelOptions};
        // Multipath + saturation-relative sweep: the M/G/1 anchor is
        // inapplicable, so resolve() must re-route to the calculus
        // backend — whose anchored fractions stay below real saturation.
        let mut sc = quick_scenario();
        sc.workload.routing = RoutingSpec::Multipath;
        sc.model = Some(ModelOptions {
            backend: BackendSpec::NetworkCalculus,
            ..ModelOptions::default()
        });
        sc.sweep = SweepSpec::SaturationFractions {
            fractions: vec![0.5, 0.9],
        };
        let res = Runner::new().run(&sc).unwrap();
        assert_eq!(res.points.len(), 2);
        for p in &res.points {
            assert!(p.model_applicable, "the calculus backend always applies");
            assert!(
                p.model_multicast.is_finite(),
                "every point carries a finite prediction at rate {}",
                p.rate
            );
            assert_eq!(
                p.model_multicast, p.bound_multicast,
                "selected backend IS the bound backend — evaluated once"
            );
            assert!(!p.sim_saturated, "calculus-anchored rates stay stable");
        }
    }

    #[test]
    fn unrealizable_sweep_rates_surface_as_typed_errors() {
        use noc_workloads::TrafficSpec;
        // A swept rate at/above the on/off peak rate cannot be realized.
        let mut sc = quick_scenario();
        sc.workload.traffic = TrafficSpec::OnOff {
            burst_len: 4.0,
            peak_rate: 0.003,
        };
        assert!(matches!(
            Runner::new().run(&sc),
            Err(Error::Workload(noc_workloads::WorkloadError::Traffic(_)))
        ));
    }

    #[test]
    fn invalid_scenarios_error_not_panic() {
        let mut sc = quick_scenario();
        sc.sweep = SweepSpec::Explicit { rates: vec![1.5] };
        assert!(matches!(
            Runner::new().run(&sc),
            Err(Error::InvalidScenario(_))
        ));

        let mut sc = quick_scenario();
        sc.topology = TopologySpec::Quarc { n: 7 };
        assert!(matches!(Runner::new().run(&sc), Err(Error::Topology(_))));
    }

    #[test]
    fn closed_loop_scenarios_run_without_model_overlay() {
        use noc_app::ClosedLoopSpec;
        // Default model options present — the runner must skip the
        // overlay anyway and stamp the point out-of-domain.
        let sc = Scenario::new(
            "closed-runner-test",
            TopologySpec::Quarc { n: 16 },
            WorkloadSpec::new(8, 0.0, MulticastPattern::Random { group: 4 }).with_closed_loop(
                ClosedLoopSpec::Coherence {
                    window: 4,
                    requests: 16,
                    write_fraction: 0.3,
                },
            ),
            SweepSpec::Explicit { rates: vec![0.0] },
        )
        .with_sim(SimConfig::quick(5))
        .with_seed(5);
        let res = Runner::new().run(&sc).expect("closed-loop scenario runs");
        assert_eq!(res.points.len(), 1);
        let p = &res.points[0];
        assert!(!p.model_applicable, "no model covers closed-loop traffic");
        assert!(p.model_multicast.is_nan(), "overlay must not be evaluated");
        assert!(p.bound_multicast.is_nan());
        assert!(p.sim_unicast.is_finite(), "protocol unicasts are measured");
        let cl = res.sims[0][0]
            .closed_loop
            .as_ref()
            .expect("closed-loop summary stamped");
        assert!(cl.quiesced);
        assert_eq!(cl.requests_retired, 16 * 16);
        // Closed-loop points take their quantiles from the request
        // completion-time histogram — P99 must surface in the CSV sink.
        assert!(p.sim_p99.is_finite());
        assert_eq!(cl.completion_hist.count(), 16 * 16);
        let qcsv = res.quantiles_table().to_csv();
        assert_eq!(qcsv.lines().count(), 2);
        assert!(!qcsv.lines().nth(1).unwrap().contains("-,"), "{qcsv}");
    }

    #[test]
    fn legacy_point_results_parse_without_telemetry_fields() {
        let legacy = r#"{
            "rate": 0.002,
            "model_unicast": 40.0,
            "model_multicast": 50.0,
            "sim_unicast": 41.0,
            "sim_multicast": 51.0,
            "sim_multicast_ci": 0.5,
            "sim_saturated": false
        }"#;
        let p: PointResult = serde::json::from_str(legacy).expect("pre-telemetry JSON parses");
        assert!(p.sim_p50.is_nan() && p.sim_p99.is_nan());
        assert_eq!(p.cache_hits, 0);
        assert_eq!(p.cache_misses, 0);
        assert!(p.wall_ms.is_nan());
        assert!(p.model_applicable, "absent flag defaults to applicable");
        // And a current PointResult round-trips through its own JSON.
        let again: PointResult = serde::json::from_str(&serde::json::to_string(&p)).unwrap();
        assert_eq!(again.rate, p.rate);
        assert_eq!(again.cache_misses, 0);
        assert!(again.sim_p95.is_nan());
    }

    fn scratch_cache_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("noc-bench-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cache_round_trips_and_is_actually_read() {
        let dir = scratch_cache_dir("cache-hit");
        let sc = quick_scenario();
        let baseline = Runner::new().run(&sc).unwrap();
        let runner = Runner::new().cache(Some(dir.clone()));
        let first = runner.run(&sc).unwrap();
        assert_eq!(first.to_csv(), baseline.to_csv(), "cache write run agrees");
        assert!(
            first.points.iter().all(|p| p.cache_hits == 0),
            "cold cache: every job simulated"
        );
        let files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .collect();
        assert_eq!(files.len(), 2, "one cache entry per (rate, replicate)");

        // Plant a sentinel inside one cached result: if the re-run
        // really reads the cache, the sentinel surfaces in the output.
        let victim = &files[0];
        let doctored = std::fs::read_to_string(victim)
            .unwrap()
            .replace("\"saturated\": false", "\"saturated\": true");
        std::fs::write(victim, doctored).unwrap();
        let second = runner.run(&sc).unwrap();
        assert!(
            second.points.iter().any(|p| p.sim_saturated),
            "doctored cache entry must surface — points were re-simulated instead"
        );
        assert!(
            second
                .points
                .iter()
                .all(|p| p.cache_hits == 1 && p.cache_misses == 0),
            "warm cache: every job served from disk"
        );
        assert!(second.summary().contains("2 cached / 0 simulated"));

        // A fresh run without the cache is unaffected.
        let clean = Runner::new().run(&sc).unwrap();
        assert_eq!(clean.to_csv(), baseline.to_csv());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_cache_entries_are_recomputed_and_rewritten() {
        let dir = scratch_cache_dir("cache-corrupt");
        let sc = quick_scenario();
        let runner = Runner::new().cache(Some(dir.clone()));
        let baseline = runner.run(&sc).unwrap();
        for entry in std::fs::read_dir(&dir).unwrap() {
            std::fs::write(entry.unwrap().path(), "{ not json").unwrap();
        }
        let recovered = runner.run(&sc).unwrap();
        assert_eq!(
            recovered.to_csv(),
            baseline.to_csv(),
            "corrupt entries fall through to recomputation"
        );
        for entry in std::fs::read_dir(&dir).unwrap() {
            let body = std::fs::read_to_string(entry.unwrap().path()).unwrap();
            assert!(
                serde::json::from_str::<SimResults>(&body).is_ok(),
                "recomputed points overwrite the corrupt entries"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_keys_separate_seeds_but_ignore_names() {
        let base = quick_scenario();
        let key = |sc: &Scenario, rate: f64, rep: u32| {
            let mut keyed = sc.clone();
            keyed.name = String::new();
            point_key(&keyed.to_json(), rate, rep)
        };
        let renamed = {
            let mut sc = base.clone();
            sc.name = "other-name".into();
            sc
        };
        assert_eq!(
            key(&base, 0.002, 0),
            key(&renamed, 0.002, 0),
            "renaming a scenario must not invalidate its cache"
        );
        assert_ne!(key(&base, 0.002, 0), key(&base, 0.004, 0));
        assert_ne!(key(&base, 0.002, 0), key(&base, 0.002, 1));
        assert_ne!(
            key(&base, 0.002, 0),
            key(&base.clone().with_seed(99), 0.002, 0)
        );
    }

    #[test]
    fn isolated_multicast_measures_zero_load_broadcast() {
        let sc = Scenario::new(
            "bcast",
            TopologySpec::Quarc { n: 16 },
            WorkloadSpec::new(32, 0.0, MulticastPattern::Broadcast),
            SweepSpec::Explicit { rates: vec![] },
        )
        .with_sim(SimConfig::quick(1))
        .with_seed(1);
        let lat = Runner::new()
            .isolated_multicast(&sc, NodeId(0))
            .expect("idle broadcast");
        // Zero-load: msg + deepest-stream links + 1.
        assert_eq!(lat, 32 + 16 / 4 + 1);
    }
}
