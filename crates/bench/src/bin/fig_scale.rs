//! Scale-axis sweep: implicit topologies from 64 to 65 536 nodes.
//!
//! Climbs a size ladder of multistage (`min-<k>x<stages>`) and
//! hierarchical (`clustered-<C>x-<inner>`) networks built through the
//! registry — all with *implicit* O(1) channel storage and lazy
//! [`SimPlan`] tables, so the 64k-node point never allocates an `n × n`
//! path table. Every rung asserts finite simulated latencies; rungs up to
//! 4 096 nodes run both engines over one shared plan and require
//! bit-identical dynamics (the differential guarantee does not weaken
//! with scale), while the 64k rung runs the event engine alone.
//!
//! Analytical overlays are deliberately absent: no backend is applicable
//! to implicit storage (`ModelError::UnsupportedTopology`), which is why
//! the ladder sweeps explicit rates rather than saturation fractions.
//!
//! Writes `BENCH_scale.json` at the workspace root with per-rung wall
//! clock, flit traffic and the process peak RSS (`VmHWM`) after each
//! rung. The 64k rung must finish inside [`RSS_BUDGET_MIB`] — the memory
//! gate CI holds the implicit representation to; exceeding it (or any
//! non-finite latency) exits nonzero.
//!
//! ```text
//! cargo run --release -p noc-bench --bin fig-scale -- [--quick] [--seed n]
//! ```

use noc_bench::cli::Options;
use noc_sim::{
    EngineKind, EventSimulator, SimConfig, SimPlan, SimResults, Simulator, TelemetrySpec,
};
use noc_topology::TopologySpec;
use noc_workloads::{DestinationSets, Workload};
use std::sync::Arc;
use std::time::Instant;

/// Peak-RSS budget (MiB) for the whole ladder through the 64k quick
/// point. The dominant allocations at 65 536 nodes are the per-cv and
/// per-channel engine state (~459k channels, one vc each) plus the lazy
/// plan's memoized stream slots — tens of MiB; an `n × n` path table
/// alone would need gigabytes, so this budget fails loudly if the dense
/// path ever sneaks back in.
const RSS_BUDGET_MIB: u64 = 512;

/// The size ladder: registry spec, generation rate, and whether the rung
/// runs both engines differentially (bounded to ≤ 4 096 nodes to keep
/// the cycle engine's O(nodes · cycles) scan out of the 64k rung).
const LADDER: &[(&str, f64, bool)] = &[
    ("min-4x3", 5e-4, true),
    ("clustered-4x-mesh-8x8", 5e-4, true),
    ("min-8x3", 5e-4, true),
    ("min-16x3", 5e-4, true),
    ("min-16x4", 5e-4, false), // 65 536 terminals — the scale target
];

fn cfg(quick: bool, seed: u64) -> SimConfig {
    let (warmup, measure, drain) = if quick {
        (200, 800, 4_000)
    } else {
        (500, 3_000, 12_000)
    };
    SimConfig {
        seed,
        warmup_cycles: warmup,
        measure_cycles: measure,
        drain_cycles: drain,
        buffer_depth: 2,
        backlog_limit: 500_000,
        batch_size: 16,
        engine: EngineKind::default(),
        telemetry: TelemetrySpec::off(),
    }
}

/// Current peak resident set (`VmHWM`) in MiB; `None` where
/// `/proc/self/status` is unavailable (non-Linux hosts skip the gate).
fn peak_rss_mib() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kib: u64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kib / 1024)
}

fn assert_finite(spec: &str, engine: &str, res: &SimResults) {
    assert!(
        !res.saturated && !res.deadlocked,
        "{spec} [{engine}]: the ladder's fixed rates must stay sub-saturation"
    );
    for (what, v) in [
        ("unicast mean", res.unicast.mean),
        ("multicast mean", res.multicast.mean),
    ] {
        assert!(
            v.is_finite() && v > 0.0,
            "{spec} [{engine}]: non-finite {what} ({v})"
        );
    }
}

struct Row {
    spec: String,
    nodes: usize,
    channels: usize,
    wall_ms: f64,
    cycles: u64,
    flit_moves: u64,
    unicast_mean: f64,
    multicast_mean: f64,
    differential: bool,
    peak_rss_mib: Option<u64>,
}

fn run_rung(spec_str: &str, rate: f64, differential: bool, opts: &Options) -> Row {
    let spec = TopologySpec::parse(spec_str).expect("ladder specs parse");
    let topo = spec.build().expect("ladder specs build");
    let n = topo.num_nodes();
    assert!(
        topo.network().is_implicit(),
        "{spec_str}: the scale ladder exists to exercise implicit storage"
    );

    let sets = DestinationSets::sampled(topo.as_ref(), 4, opts.seed);
    let wl = Workload::new(8, rate, 0.1, sets).expect("ladder workload");
    let plan = SimPlan::build(topo.as_ref(), &wl).expect("plan builds");
    assert!(plan.is_lazy(), "{spec_str}: implicit nets get lazy plans");

    let cfg = cfg(opts.quick, opts.seed);
    let t0 = Instant::now();
    let event = EventSimulator::with_plan(topo.as_ref(), &wl, cfg, Arc::clone(&plan)).run();
    let wall_ms = t0.elapsed().as_nanos() as f64 / 1e6;
    assert_finite(spec_str, "event", &event);

    if differential {
        let cycle = Simulator::with_plan(topo.as_ref(), &wl, cfg, Arc::clone(&plan)).run();
        assert_finite(spec_str, "cycle", &cycle);
        assert_eq!(event.cycles, cycle.cycles, "{spec_str}: cycles diverged");
        assert_eq!(
            event.flit_moves, cycle.flit_moves,
            "{spec_str}: flit moves diverged"
        );
        assert_eq!(
            event.total_absorbed, cycle.total_absorbed,
            "{spec_str}: absorbed counts diverged"
        );
    }

    Row {
        spec: spec_str.to_string(),
        nodes: n,
        channels: topo.network().num_channels(),
        wall_ms,
        cycles: event.cycles,
        flit_moves: event.flit_moves,
        unicast_mean: event.unicast.mean,
        multicast_mean: event.multicast.mean,
        differential,
        peak_rss_mib: peak_rss_mib(),
    }
}

fn emit_json(rows: &[Row], quick: bool) {
    let mut json = String::from("{\n  \"bench\": \"fig-scale\",\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!("  \"rss_budget_mib\": {RSS_BUDGET_MIB},\n"));
    json.push_str("  \"points\": [\n");
    for (i, r) in rows.iter().enumerate() {
        let rss = r.peak_rss_mib.map_or("null".to_string(), |m| m.to_string());
        json.push_str(&format!(
            "    {{\"spec\": \"{}\", \"nodes\": {}, \"channels\": {}, \
             \"wall_ms\": {:.2}, \"cycles\": {}, \"flit_moves\": {}, \
             \"unicast_mean\": {:.4}, \"multicast_mean\": {:.4}, \
             \"differential\": {}, \"peak_rss_mib\": {}}}{}\n",
            r.spec,
            r.nodes,
            r.channels,
            r.wall_ms,
            r.cycles,
            r.flit_moves,
            r.unicast_mean,
            r.multicast_mean,
            r.differential,
            rss,
            if i + 1 < rows.len() { "," } else { "" },
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote BENCH_scale.json ({} rungs)", rows.len()),
        Err(e) => eprintln!("could not write BENCH_scale.json: {e}"),
    }
}

fn main() {
    let opts = Options::from_env();
    println!("== Scale ladder: implicit topologies, explicit-rate sweep ==\n");
    let mut rows = Vec::with_capacity(LADDER.len());
    for &(spec, rate, differential) in LADDER {
        let row = run_rung(spec, rate, differential, &opts);
        println!(
            "{:<24} {:>6} nodes {:>8} channels  {:>9.1} ms  {:>9} flits  \
             uni {:>7.2}  multi {:>7.2}  rss {:>5} MiB{}",
            row.spec,
            row.nodes,
            row.channels,
            row.wall_ms,
            row.flit_moves,
            row.unicast_mean,
            row.multicast_mean,
            row.peak_rss_mib
                .map_or("n/a".to_string(), |m| m.to_string()),
            if row.differential {
                "  [both engines, bit-identical]"
            } else {
                "  [event engine]"
            },
        );
        rows.push(row);
    }
    emit_json(&rows, opts.quick);

    if let Some(rss) = rows.last().and_then(|r| r.peak_rss_mib) {
        if rss > RSS_BUDGET_MIB {
            eprintln!(
                "FAIL: peak RSS {rss} MiB exceeds the {RSS_BUDGET_MIB} MiB budget \
                 for the 64k implicit-topology rung"
            );
            std::process::exit(1);
        }
        println!("\npeak RSS {rss} MiB (budget {RSS_BUDGET_MIB} MiB) — OK");
    } else {
        println!("\npeak RSS unavailable on this host; memory gate skipped");
    }
}
