//! Congestion heatmaps and flit traces from the flight recorder.
//!
//! The latency curves of Fig. 6/7 say *how slow* the network gets; this
//! exhibit shows *where*. Each panel sweeps a topology from light load
//! toward its saturation knee with full telemetry enabled — the bounded
//! ring trace sink, the windowed per-link utilization series and the
//! streaming latency histograms — then renders the hottest point as:
//!
//! * an ASCII heatmap of the busiest links (mean | peak utilization),
//! * an SVG time × channel grid (`fig-heatmap-<panel>.svg`),
//! * a Chrome-trace/Perfetto JSON of the captured flit events
//!   (`fig-heatmap-<panel>-trace.json`, loadable in ui.perfetto.dev),
//! * tail-latency (`-quantiles.csv`) and engine-counter (`-engine.csv`)
//!   CSV sinks per scenario.
//!
//! Every emitted trace is checked with
//! [`noc_sim::validate_chrome_trace`] — well-formed JSON, every event
//! phased and timestamped, timestamps monotone — so CI can smoke this
//! binary and trust the artifacts.
//!
//! ```text
//! cargo run --release -p noc-bench --bin fig-heatmap -- [--quick] [--points N] [--json]
//! ```

use noc_bench::cli::Options;
use noc_bench::{MulticastPattern, Result, Runner, Scenario, SweepSpec, WorkloadSpec};
use noc_sim::{chrome_trace, validate_chrome_trace, TelemetrySpec, TrackNames};
use noc_topology::{render, TopologySpec};

fn main() -> Result<()> {
    let opts = Options::from_env();
    println!("== Flight recorder: per-link congestion heatmaps and flit traces ==\n");

    // Full telemetry: a bounded ring trace (the tail of the run is the
    // interesting part once the network is warm) plus utilization
    // windows sized so quick runs still fill several columns.
    let (ring, window) = if opts.quick {
        (1 << 14, 64)
    } else {
        (1 << 16, 256)
    };
    let telemetry = TelemetrySpec::flight_recorder(ring, window);

    let panels = [
        ("quarc-n16", TopologySpec::Quarc { n: 16 }),
        (
            "mesh-4x4",
            TopologySpec::Mesh {
                width: 4,
                height: 4,
            },
        ),
    ];
    let fractions: Vec<f64> = (0..opts.points)
        .map(|i| 0.2 + 0.6 * i as f64 / (opts.points - 1) as f64)
        .collect();

    let runner = Runner::new().threads(opts.threads).cache(opts.cache_dir());
    for (label, topology) in panels {
        let sc = Scenario::new(
            format!("fig-heatmap-{label}"),
            topology,
            WorkloadSpec::new(16, 0.05, MulticastPattern::Random { group: 4 }),
            SweepSpec::SaturationFractions {
                fractions: fractions.clone(),
            },
        )
        .with_sim(opts.sim_config().with_telemetry(telemetry))
        .with_seed(opts.seed);
        let res = runner.run(&sc)?;

        println!("panel {label}:");
        println!("{}", res.quantiles_table().to_aligned());
        for p in &res.points {
            assert!(
                p.sim_saturated || p.sim_p99.is_finite(),
                "{label}: unsaturated point at rate {} lost its P99",
                p.rate
            );
        }

        // Render the hottest *unsaturated* point: past saturation the
        // series is still valid but the picture is just "everything red".
        let hot = res
            .points
            .iter()
            .rposition(|p| !p.sim_saturated)
            .unwrap_or(res.points.len() - 1);
        let sim = &res.sims[hot][0];
        let topo = sc.materialize()?.0;

        let util = sim
            .util
            .as_ref()
            .expect("telemetry was enabled: utilization series present");
        println!(
            "hottest unsaturated point: rate {:.5}",
            res.points[hot].rate
        );
        println!("{}", render::heatmap_ascii(topo.as_ref(), util, 12));
        let svg_path = opts.out.join(format!("fig-heatmap-{label}.svg"));
        std::fs::create_dir_all(&opts.out)?;
        std::fs::write(&svg_path, render::heatmap_svg(topo.as_ref(), util))?;
        println!("wrote {}", svg_path.display());

        let trace = sim
            .trace
            .as_ref()
            .expect("telemetry was enabled: trace captured");
        let net = topo.network();
        let tracks = TrackNames {
            channels: net.channels().iter().map(|c| c.label.clone()).collect(),
            nodes: (0..net.num_nodes()).map(|i| format!("n{i}")).collect(),
        };
        let json = chrome_trace(trace, &tracks);
        let events = validate_chrome_trace(&json)
            .unwrap_or_else(|e| panic!("{label}: emitted trace is malformed: {e}"));
        let trace_path = opts.out.join(format!("fig-heatmap-{label}-trace.json"));
        std::fs::write(&trace_path, &json)?;
        println!(
            "wrote {} ({events} events, {} dropped by the ring)\n",
            trace_path.display(),
            trace.dropped
        );

        match res.write_quantiles_csv(&opts.out) {
            Ok(path) => println!("wrote {}", path.display()),
            Err(e) => eprintln!("quantiles csv write failed: {e}"),
        }
        match res.write_engine_csv(&opts.out) {
            Ok(path) => println!("wrote {}\n", path.display()),
            Err(e) => eprintln!("engine csv write failed: {e}\n"),
        }
        println!("{}\n", res.summary());
        if opts.json {
            res.write_json(&opts.out)?;
        }
    }
    Ok(())
}
