//! Regenerates **Figure 6** of the paper: analytical model vs flit-level
//! simulation for Quarc NoCs with **random** multicast destination sets.
//!
//! One panel per `(N, M, α)` configuration, each compiled to a
//! [`Scenario`](noc_bench::Scenario) and executed by the shared
//! [`Runner`](noc_bench::Runner): the per-node generation rate sweeps
//! from low load to just past the model's saturation horizon and the
//! curve reports unicast and multicast latency from both the model and
//! the simulator, plus the relative error.
//!
//! ```text
//! cargo run --release -p noc-bench --bin fig6 -- [--quick] [--full] [--points N] [--json]
//! ```

use noc_bench::cli::Options;
use noc_bench::harness::run_figure;
use noc_bench::{Pattern, Result};

fn main() -> Result<()> {
    let opts = Options::from_env();
    run_figure("6", Pattern::Random, "random multicast destinations", &opts)
}
