//! Regenerates **Figure 6** of the paper: analytical model vs flit-level
//! simulation for Quarc NoCs with **random** multicast destination sets.
//!
//! One panel per `(N, M, α)` configuration; each panel sweeps the per-node
//! message generation rate from low load to just past the model's
//! saturation horizon and reports unicast and multicast latency from both
//! the model and the simulator, plus the relative error.
//!
//! ```text
//! cargo run --release -p noc-bench --bin fig6 -- [--quick] [--full] [--points N]
//! ```

use noc_bench::cli::Options;
use noc_bench::harness::{default_panels, full_panels, panel_table, run_panel, sweep_for, Pattern};

fn main() {
    let opts = Options::from_env();
    println!("== Figure 6: model vs simulation, random multicast destinations ==\n");
    let panels = if opts.full {
        full_panels(Pattern::Random, opts.seed)
    } else {
        default_panels(Pattern::Random, opts.seed)
    };
    for cfg in panels {
        let sweep = sweep_for(&cfg, opts.points);
        let points = run_panel(&cfg, &sweep, opts.sim_config(), opts.threads);
        let table = panel_table(&points);
        println!(
            "panel {} (N={}, M={} flits, alpha={:.0}%, |group|={}):",
            cfg.label(),
            cfg.n,
            cfg.msg_len,
            cfg.alpha * 100.0,
            cfg.group_size
        );
        println!("{}", table.to_aligned());
        match opts.write_csv(&format!("fig6-{}.csv", cfg.label()), &table.to_csv()) {
            Ok(path) => println!("wrote {}\n", path.display()),
            Err(e) => eprintln!("csv write failed: {e}\n"),
        }
    }
}
