//! Regenerates **Figure 3** of the paper: broadcast in a 16-node Quarc.
//!
//! Node 0 initiates a broadcast; the four port streams carry destination
//! addresses 4, 12, 5 and 11 (the last node visited on each rim), and the
//! absorb-and-forward visit orders cover all 15 other nodes disjointly.
//! The network comes from the [`TopologySpec`] registry.
//!
//! ```text
//! cargo run --release -p noc-bench --bin fig3-broadcast
//! ```

use noc_bench::Result;
use noc_topology::render::broadcast_trace;
use noc_topology::{NodeId, TopologySpec};

fn main() -> Result<()> {
    let quarc = (TopologySpec::Quarc { n: 16 }).build()?;
    println!("== Figure 3: broadcast in the Quarc NoC (N = 16) ==\n");
    println!("{}", broadcast_trace(quarc.as_ref(), NodeId(0)));

    // Show the zero-load broadcast depth advantage over the Spidergon
    // unicast train the paper quotes (N/4 hops vs N-1 transmissions).
    let streams = quarc.broadcast_streams(NodeId(0));
    let max_links = streams
        .iter()
        .map(|s| s.path.link_count())
        .max()
        .expect("a 16-node broadcast has streams");
    println!(
        "deepest stream: {} links = N/4 (Spidergon needs N-1 = {} consecutive unicasts)",
        max_links,
        quarc.num_nodes() - 1
    );
    Ok(())
}
