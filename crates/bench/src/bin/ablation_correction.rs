//! Ablation A: the two formula ambiguities of the printed paper.
//!
//! * Eq. 3's waiting-time prefactor: standard Pollaczek–Khinchine vs the
//!   literal printed form (`λρ` numerator — dimensionally a rate).
//! * Eq. 6's self-traffic correction: fraction-of-arrivals vs the literal
//!   printed factor vs no correction.
//!
//! The simulated ground truth comes from one [`Scenario`] (three
//! saturation-relative operating points) executed by the shared
//! [`Runner`]; each formula variant is then overlaid analytically on the
//! same operating points. The table reports the multicast latency each
//! variant predicts against the simulation, justifying the defaults
//! chosen in DESIGN.md.
//!
//! ```text
//! cargo run --release -p noc-bench --bin ablation-correction -- [--quick] [--json]
//! ```

use noc_bench::cli::Options;
use noc_bench::{MulticastPattern, Result, Runner, Scenario, SweepSpec, WorkloadSpec};
use noc_topology::TopologySpec;
use noc_workloads::table::{fmt_latency, Table};
use quarc_core::{AnalyticModel, ModelOptions, ServiceCorrection, WaitingFormula};

fn main() -> Result<()> {
    let opts = Options::from_env();
    let load_fractions = [0.3, 0.6, 0.85];
    let sc = Scenario::new(
        "ablation-correction",
        TopologySpec::Quarc { n: 16 },
        WorkloadSpec::new(32, 0.05, MulticastPattern::Random { group: 4 }),
        SweepSpec::SaturationFractions {
            fractions: load_fractions.to_vec(),
        },
    )
    .with_sim(opts.sim_config())
    .with_seed(opts.seed);

    let variants: Vec<(&str, ModelOptions)> = vec![
        ("PK + self-excluding (default)", ModelOptions::default()),
        (
            "PK + literal Eq.6 factor",
            ModelOptions {
                correction: ServiceCorrection::LiteralEq6,
                ..Default::default()
            },
        ),
        (
            "PK + no correction",
            ModelOptions {
                correction: ServiceCorrection::None,
                ..Default::default()
            },
        ),
        (
            "literal Eq.3 prefactor",
            ModelOptions {
                formula: WaitingFormula::LiteralEq3,
                ..Default::default()
            },
        ),
        (
            "clone ejection load counted",
            ModelOptions {
                clone_ejection_load: true,
                ..Default::default()
            },
        ),
    ];

    println!("== Ablation: formula variants of Eq. 3 / Eq. 6 (N=16, M=32, alpha=5%) ==\n");
    let result = Runner::new().threads(opts.threads).run(&sc)?;
    if opts.json {
        result.write_json(&opts.out)?;
    }

    // Overlay each formula variant on the already-simulated points,
    // rebuilding the exact pair the runner used.
    let (topo, proto) = sc.materialize()?;
    let mut table = Table::new(vec!["variant", "load", "model_mc", "sim_mc", "err%"]);
    for (p, load_frac) in result.points.iter().zip(load_fractions) {
        let wl = proto.at_rate(p.rate)?;
        for (name, mo) in &variants {
            let model_mc = match AnalyticModel::new(topo.as_ref(), &wl, *mo).evaluate() {
                Ok(pred) => pred.multicast_latency,
                Err(_) => f64::NAN,
            };
            let err = if model_mc.is_finite() && p.sim_multicast > 0.0 {
                format!(
                    "{:.1}",
                    (model_mc - p.sim_multicast).abs() / p.sim_multicast * 100.0
                )
            } else {
                "-".into()
            };
            table.push_row(vec![
                name.to_string(),
                format!("{:.0}% of sat", load_frac * 100.0),
                fmt_latency(model_mc),
                fmt_latency(p.sim_multicast),
                err,
            ]);
        }
    }
    println!("{}", table.to_aligned());
    if let Ok(p) = opts.write_csv("ablation-correction.csv", &table.to_csv()) {
        println!("wrote {}", p.display());
    }
    Ok(())
}
