//! Ablation A: the two formula ambiguities of the printed paper.
//!
//! * Eq. 3's waiting-time prefactor: standard Pollaczek–Khinchine vs the
//!   literal printed form (`λρ` numerator — dimensionally a rate).
//! * Eq. 6's self-traffic correction: fraction-of-arrivals vs the literal
//!   printed factor vs no correction.
//!
//! The table reports the multicast latency each variant predicts against
//! the simulated ground truth at three operating points, justifying the
//! defaults chosen in DESIGN.md.
//!
//! ```text
//! cargo run --release -p noc-bench --bin ablation-correction -- [--quick]
//! ```

use noc_bench::cli::Options;
use noc_bench::harness::{FigureConfig, Pattern};
use noc_sim::build_engine;
use noc_workloads::table::{fmt_latency, Table};
use quarc_core::{AnalyticModel, ModelOptions, ServiceCorrection, WaitingFormula};

fn main() {
    let opts = Options::from_env();
    let cfg = FigureConfig {
        n: 16,
        msg_len: 32,
        alpha: 0.05,
        group_size: 4,
        pattern: Pattern::Random,
        seed: opts.seed,
    };
    let (topo, proto) = cfg.build();
    let sat = quarc_core::max_sustainable_rate(&topo, &proto, ModelOptions::default(), 0.01);

    let variants: Vec<(&str, ModelOptions)> = vec![
        ("PK + self-excluding (default)", ModelOptions::default()),
        (
            "PK + literal Eq.6 factor",
            ModelOptions {
                correction: ServiceCorrection::LiteralEq6,
                ..Default::default()
            },
        ),
        (
            "PK + no correction",
            ModelOptions {
                correction: ServiceCorrection::None,
                ..Default::default()
            },
        ),
        (
            "literal Eq.3 prefactor",
            ModelOptions {
                formula: WaitingFormula::LiteralEq3,
                ..Default::default()
            },
        ),
        (
            "clone ejection load counted",
            ModelOptions {
                clone_ejection_load: true,
                ..Default::default()
            },
        ),
    ];

    println!("== Ablation: formula variants of Eq. 3 / Eq. 6 (N=16, M=32, alpha=5%) ==\n");
    let mut table = Table::new(vec!["variant", "load", "model_mc", "sim_mc", "err%"]);
    for load_frac in [0.3, 0.6, 0.85] {
        let rate = sat * load_frac;
        let wl = proto.at_rate(rate).unwrap();
        let sim = build_engine(&topo, &wl, opts.sim_config()).run();
        for (name, mo) in &variants {
            let model_mc = match AnalyticModel::new(&topo, &wl, *mo).evaluate() {
                Ok(p) => p.multicast_latency,
                Err(_) => f64::NAN,
            };
            let err = if model_mc.is_finite() && sim.multicast.mean > 0.0 {
                format!(
                    "{:.1}",
                    (model_mc - sim.multicast.mean).abs() / sim.multicast.mean * 100.0
                )
            } else {
                "-".into()
            };
            table.push_row(vec![
                name.to_string(),
                format!("{:.0}% of sat", load_frac * 100.0),
                fmt_latency(model_mc),
                fmt_latency(sim.multicast.mean),
                err,
            ]);
        }
    }
    println!("{}", table.to_aligned());
    if let Ok(p) = opts.write_csv("ablation-correction.csv", &table.to_csv()) {
        println!("wrote {}", p.display());
    }
}
