//! Closed-loop knee: completion latency vs throughput over the
//! outstanding-request window.
//!
//! Open-loop sweeps (Fig. 6/7) drive the network with a rate knob the
//! application never has; real memory-system traffic is *closed-loop* —
//! each node keeps at most `w` requests outstanding and injects only
//! when a delivery retires one. This binary sweeps the window `w` of the
//! invalidation-coherence protocol (powers of two from 1) on the 16-node
//! Quarc and the 4×4 mesh, charting the classic closed-loop shape:
//! per-request completion latency rises with `w` while ops retired per
//! cycle climbs until the network, not the window, is the bottleneck —
//! and can *roll back* past the knee, where wormhole blocking makes the
//! congested windows retire slower. With zero think time, 16 sources are
//! already enough to saturate the 16-node Quarc at `w = 1` (the curve is
//! the knee's congested side); the mesh keeps its knee interior.
//!
//! The analytical model has no notion of delivery-triggered injections,
//! so every point is stamped `model_applicable = false` — the curve is a
//! simulation-only exhibit by construction.
//!
//! ```text
//! cargo run --release -p noc-bench --bin fig-closedloop -- [--quick] [--points N] [--json]
//! ```
//!
//! `--points N` selects the number of window sizes (powers of two from
//! 1), so `--points 2` is a CI-sized smoke sweep; the binary exits
//! non-zero if throughput is not monotone in the window up to the knee.

use noc_bench::cli::Options;
use noc_bench::{MulticastPattern, Result, Runner, Scenario, SweepSpec, WorkloadSpec};
use noc_sim::ClosedLoopSpec;
use noc_topology::TopologySpec;
use noc_workloads::table::Table;

fn main() -> Result<()> {
    let opts = Options::from_env();
    println!("== Closed-loop coherence: latency/throughput knee over the window ==\n");

    // Enough requests per node that the steady window, not the start-up
    // ramp, dominates the measurement.
    let requests: u32 = if opts.quick { 32 } else { 128 };
    let windows: Vec<u32> = (0..opts.points as u32).map(|i| 1 << i).collect();
    let panels = [
        ("quarc-n16", TopologySpec::Quarc { n: 16 }),
        (
            "mesh-4x4",
            TopologySpec::Mesh {
                width: 4,
                height: 4,
            },
        ),
    ];

    let runner = Runner::new().threads(opts.threads).cache(opts.cache_dir());
    for (label, topology) in panels {
        let mut table = Table::new(vec![
            "window",
            "completion",
            "compl_ci95",
            "avg_outstanding",
            "ops_per_kcycle",
            "quiesce_cycle",
        ]);
        let mut throughputs: Vec<f64> = Vec::new();
        for &window in &windows {
            let spec = ClosedLoopSpec::Coherence {
                window,
                requests,
                write_fraction: 0.1,
            };
            let sc = Scenario::new(
                format!("closedloop-{label}-w{window}"),
                topology,
                WorkloadSpec::new(8, 0.0, MulticastPattern::Random { group: 4 })
                    .with_closed_loop(spec),
                SweepSpec::Explicit { rates: vec![0.0] },
            )
            .with_sim(opts.sim_config())
            .with_model(None)
            .with_seed(opts.seed);
            let res = runner.run(&sc)?;
            let point = &res.points[0];
            assert!(
                !point.model_applicable,
                "closed-loop points must never claim model applicability"
            );
            let cl = res.sims[0][0]
                .closed_loop
                .as_ref()
                .expect("closed-loop scenario stamps closed-loop results");
            assert!(
                cl.quiesced,
                "{label} w={window}: protocol must quiesce inside the deadline"
            );
            table.push_row(vec![
                window.to_string(),
                format!("{:.2}", cl.completion.mean),
                format!("{:.2}", cl.completion.ci95),
                format!("{:.2}", cl.avg_outstanding),
                format!("{:.3}", cl.ops_per_cycle * 1000.0),
                cl.quiesce_cycle.to_string(),
            ]);
            throughputs.push(cl.ops_per_cycle);
            if opts.json {
                res.write_json(&opts.out)?;
            }
        }

        println!("panel {label} ({requests} requests/node, write fraction 0.1):");
        println!("{}", table.to_aligned());
        match opts.write_csv(&format!("fig-closedloop-{label}.csv"), &table.to_csv()) {
            Ok(path) => println!("wrote {}\n", path.display()),
            Err(e) => eprintln!("csv write failed: {e}\n"),
        }

        // The knee shape check: up to the best window, doubling the
        // window must not *lose* throughput (5% tolerance absorbs
        // protocol-RNG wiggle). Past the knee anything goes — wormhole
        // blocking can make congested windows retire *slower*, which is
        // exactly the rollback the closed-loop exhibit is for.
        let knee = throughputs
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap();
        for i in 0..knee {
            assert!(
                throughputs[i + 1] >= throughputs[i] * 0.95,
                "{label}: throughput not monotone below the knee: \
                 w={} gives {:.6}, w={} gives {:.6}",
                windows[i],
                throughputs[i],
                windows[i + 1],
                throughputs[i + 1]
            );
        }
    }
    Ok(())
}
