//! Regenerates **Figure 7** of the paper: analytical model vs flit-level
//! simulation for Quarc NoCs with **localized** multicast destination sets
//! (all destinations of a node on the same rim quadrant).
//!
//! ```text
//! cargo run --release -p noc-bench --bin fig7 -- [--quick] [--full] [--points N]
//! ```

use noc_bench::cli::Options;
use noc_bench::harness::{default_panels, full_panels, panel_table, run_panel, sweep_for, Pattern};

fn main() {
    let opts = Options::from_env();
    println!("== Figure 7: model vs simulation, localized multicast destinations ==\n");
    let panels = if opts.full {
        full_panels(Pattern::Localized, opts.seed)
    } else {
        default_panels(Pattern::Localized, opts.seed)
    };
    for cfg in panels {
        let sweep = sweep_for(&cfg, opts.points);
        let points = run_panel(&cfg, &sweep, opts.sim_config(), opts.threads);
        let table = panel_table(&points);
        println!(
            "panel {} (N={}, M={} flits, alpha={:.0}%, |group|={}, same-rim):",
            cfg.label(),
            cfg.n,
            cfg.msg_len,
            cfg.alpha * 100.0,
            cfg.group_size
        );
        println!("{}", table.to_aligned());
        match opts.write_csv(&format!("fig7-{}.csv", cfg.label()), &table.to_csv()) {
            Ok(path) => println!("wrote {}\n", path.display()),
            Err(e) => eprintln!("csv write failed: {e}\n"),
        }
    }
}
