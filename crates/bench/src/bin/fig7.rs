//! Regenerates **Figure 7** of the paper: analytical model vs flit-level
//! simulation for Quarc NoCs with **localized** multicast destination sets
//! (all destinations of a node on the same rim quadrant).
//!
//! Panels are compiled to [`Scenario`](noc_bench::Scenario)s and executed
//! by the shared [`Runner`](noc_bench::Runner), exactly like `fig6`.
//!
//! ```text
//! cargo run --release -p noc-bench --bin fig7 -- [--quick] [--full] [--points N] [--json]
//! ```

use noc_bench::cli::Options;
use noc_bench::harness::run_figure;
use noc_bench::{Pattern, Result};

fn main() -> Result<()> {
    let opts = Options::from_env();
    run_figure(
        "7",
        Pattern::Localized,
        "localized multicast destinations",
        &opts,
    )
}
