//! Ablation B: the asynchronous max-of-exponentials combination (Eq. 13)
//! vs the "largest sub-network wins" heuristic the paper argues against in
//! §2, on two multi-port topologies:
//!
//! * the 2-port ring (`m = 2` streams), and
//! * the 4-port Quarc (`m = 4` streams),
//!
//! each against the simulated multicast latency. Both topologies share
//! one [`Scenario`] shape (two saturation-relative operating points)
//! executed by the common [`Runner`]; the largest-subset heuristic is
//! overlaid analytically on the same points. The gap between the
//! heuristic and the simulation grows with the number of ports, which is
//! precisely the paper's motivation for modelling the last-completion
//! time.
//!
//! ```text
//! cargo run --release -p noc-bench --bin ablation-ports -- [--quick] [--json]
//! ```

use noc_bench::cli::Options;
use noc_bench::{MulticastPattern, Result, Runner, Scenario, SweepSpec, WorkloadSpec};
use noc_topology::TopologySpec;
use noc_workloads::table::{fmt_latency, Table};
use quarc_core::multicast::largest_subset_latency;
use quarc_core::rates::ChannelLoads;
use quarc_core::{service, AnalyticModel, ModelOptions};

fn run_topo(
    name: &str,
    topology: TopologySpec,
    group: usize,
    opts: &Options,
    table: &mut Table,
) -> Result<()> {
    let sc = Scenario::new(
        format!("ablation-ports-{topology}"),
        topology,
        WorkloadSpec::new(32, 0.05, MulticastPattern::Random { group }),
        SweepSpec::SaturationFractions {
            fractions: vec![0.4, 0.8],
        },
    )
    .with_sim(opts.sim_config())
    .with_seed(opts.seed);
    let result = Runner::new().threads(opts.threads).run(&sc)?;
    if opts.json {
        result.write_json(&opts.out)?;
    }

    let (topo, proto) = sc.materialize()?;
    let mo = ModelOptions::default();
    for (p, load_frac) in result.points.iter().zip([0.4, 0.8]) {
        let wl = proto.at_rate(p.rate)?;
        let pred = AnalyticModel::new(topo.as_ref(), &wl, mo).evaluate();
        let loads = ChannelLoads::build(topo.as_ref(), &wl, &mo);
        let heuristic = service::solve(topo.as_ref(), &loads, wl.msg_len as f64, &mo)
            .map(|sol| {
                largest_subset_latency(
                    topo.as_ref(),
                    wl.routing,
                    wl.msg_len as f64,
                    &|n| wl.multicast_set(n),
                    &loads,
                    &sol,
                    &mo,
                )
            })
            .unwrap_or(f64::NAN);
        let (emax, ports) = match &pred {
            Ok(pred) => (
                pred.multicast_latency,
                pred.per_node
                    .iter()
                    .map(|nm| nm.port_waits.len())
                    .max()
                    .unwrap_or(0),
            ),
            Err(_) => (f64::NAN, 0),
        };
        table.push_row(vec![
            name.to_string(),
            format!("{ports}"),
            format!("{:.0}% of sat", load_frac * 100.0),
            fmt_latency(emax),
            fmt_latency(heuristic),
            fmt_latency(p.sim_multicast),
        ]);
    }
    Ok(())
}

fn main() -> Result<()> {
    let opts = Options::from_env();
    println!("== Ablation: E[max] combination vs largest-subset heuristic ==\n");
    let mut table = Table::new(vec![
        "topology",
        "streams",
        "load",
        "model_E[max]",
        "model_largest",
        "sim_mc",
    ]);
    run_topo(
        "ring-16 (m=2)",
        TopologySpec::Ring { n: 16 },
        4,
        &opts,
        &mut table,
    )?;
    run_topo(
        "quarc-16 (m=4)",
        TopologySpec::Quarc { n: 16 },
        4,
        &opts,
        &mut table,
    )?;
    println!("{}", table.to_aligned());
    if let Ok(p) = opts.write_csv("ablation-ports.csv", &table.to_csv()) {
        println!("wrote {}", p.display());
    }
    Ok(())
}
