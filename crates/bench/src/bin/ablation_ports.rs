//! Ablation B: the asynchronous max-of-exponentials combination (Eq. 13)
//! vs the "largest sub-network wins" heuristic the paper argues against in
//! §2, on two multi-port topologies:
//!
//! * the 2-port ring (`m = 2` streams), and
//! * the 4-port Quarc (`m = 4` streams),
//!
//! each against the simulated multicast latency. The gap between the
//! heuristic and the simulation grows with the number of ports, which is
//! precisely the paper's motivation for modelling the last-completion time.
//!
//! ```text
//! cargo run --release -p noc-bench --bin ablation-ports -- [--quick]
//! ```

use noc_bench::cli::Options;
use noc_sim::build_engine;
use noc_topology::{Quarc, Ring, Topology};
use noc_workloads::table::{fmt_latency, Table};
use noc_workloads::{DestinationSets, Workload};
use quarc_core::multicast::largest_subset_latency;
use quarc_core::rates::ChannelLoads;
use quarc_core::{max_sustainable_rate, service, AnalyticModel, ModelOptions};

fn run_topo(name: &str, topo: &dyn Topology, group: usize, opts: &Options, table: &mut Table) {
    let sets = DestinationSets::random(topo, group, opts.seed);
    let proto = Workload::new(32, 1e-5, 0.05, sets).unwrap();
    let mo = ModelOptions::default();
    let sat = max_sustainable_rate(topo, &proto, mo, 0.01);
    for load_frac in [0.4, 0.8] {
        let wl = proto.at_rate(sat * load_frac).unwrap();
        let pred = AnalyticModel::new(topo, &wl, mo).evaluate();
        let loads = ChannelLoads::build(topo, &wl, &mo);
        let heuristic = service::solve(topo, &loads, wl.msg_len as f64, &mo)
            .map(|sol| {
                largest_subset_latency(
                    topo,
                    wl.msg_len as f64,
                    &|n| wl.multicast_set(n),
                    &loads,
                    &sol,
                    &mo,
                )
            })
            .unwrap_or(f64::NAN);
        let sim = build_engine(topo, &wl, opts.sim_config()).run();
        let (emax, ports) = match &pred {
            Ok(p) => (
                p.multicast_latency,
                p.per_node
                    .iter()
                    .map(|nm| nm.port_waits.len())
                    .max()
                    .unwrap_or(0),
            ),
            Err(_) => (f64::NAN, 0),
        };
        table.push_row(vec![
            name.to_string(),
            format!("{ports}"),
            format!("{:.0}% of sat", load_frac * 100.0),
            fmt_latency(emax),
            fmt_latency(heuristic),
            fmt_latency(sim.multicast.mean),
        ]);
    }
}

fn main() {
    let opts = Options::from_env();
    println!("== Ablation: E[max] combination vs largest-subset heuristic ==\n");
    let mut table = Table::new(vec![
        "topology",
        "streams",
        "load",
        "model_E[max]",
        "model_largest",
        "sim_mc",
    ]);
    let ring = Ring::new(16).unwrap();
    run_topo("ring-16 (m=2)", &ring, 4, &opts, &mut table);
    let quarc = Quarc::new(16).unwrap();
    run_topo("quarc-16 (m=4)", &quarc, 4, &opts, &mut table);
    println!("{}", table.to_aligned());
    if let Ok(p) = opts.write_csv("ablation-ports.csv", &table.to_csv()) {
        println!("wrote {}", p.display());
    }
}
