//! CI perf smoke: the event engine must not lose to the cycle engine at
//! high load.
//!
//! Runs one deliberately hostile sweep point — a 64-node Quarc past the
//! saturation knee, where nearly every cycle is active and the event
//! engine has no inert cycles to skip — on both engines over a shared
//! [`SimPlan`], checks the runs are bit-identical, and fails (exit 1) if
//! the event engine's wall-clock exceeds 1.1× the cycle engine's. This is
//! the regression gate for the calendar queue + arena + span-backoff hot
//! path; the full trajectory lives in `BENCH_sim.json`.
//!
//! ```text
//! cargo run --release -p noc-bench --bin perf-smoke [-- n rate samples]
//! ```
//!
//! Defaults to `64 0.005 5`; the optional overrides probe other points
//! with the same interleaved-sampling methodology.

use noc_sim::{
    EngineKind, EventSimulator, SimConfig, SimPlan, SimResults, Simulator, TelemetrySpec,
};
use noc_topology::{Quarc, Topology};
use noc_workloads::{DestinationSets, Workload};
use std::sync::Arc;
use std::time::Instant;

/// Wall-clock budget: event time must stay within this factor of cycle
/// time at the probed point (a loss here is exactly the regression this
/// gate exists to catch; the tolerance absorbs CI timer noise).
const BUDGET: f64 = 1.1;

fn cfg() -> SimConfig {
    SimConfig {
        seed: 7,
        warmup_cycles: 1_000,
        measure_cycles: 8_000,
        drain_cycles: 20_000,
        buffer_depth: 2,
        backlog_limit: 50_000,
        batch_size: 32,
        engine: EngineKind::default(),
        // The gate times the hot path as shipped: telemetry off. The
        // disabled taps are the overhead budget this run holds them to.
        telemetry: TelemetrySpec::off(),
    }
}

fn run_once(
    topo: &dyn Topology,
    wl: &Workload,
    plan: &Arc<SimPlan>,
    engine: EngineKind,
) -> SimResults {
    match engine {
        EngineKind::Cycle => Simulator::with_plan(topo, wl, cfg(), Arc::clone(plan)).run(),
        EngineKind::EventDriven => {
            EventSimulator::with_plan(topo, wl, cfg(), Arc::clone(plan)).run()
        }
    }
}

/// Run `samples` back-to-back cycle/event pairs (after one warmup run of
/// each) and return `(cycle_ms, event_ms, ratio)`:
///
/// * the per-engine wall-clock *minima* — host steal time only ever
///   adds, so the minimum estimates each engine's intrinsic cost;
/// * the *median of per-pair event/cycle ratios*, the statistic the gate
///   judges. The two runs of a pair execute within milliseconds of each
///   other, so each pair's ratio is taken under one machine state
///   (frequency, steal, cache temperature) and common-mode noise
///   divides out; pair order alternates to cancel ramp bias, and the
///   median discards pairs a steal burst split down the middle. Ratios
///   of minima taken seconds apart spread several percent on a shared
///   box — paired medians hold to well under one percent.
fn time_engines(
    topo: &dyn Topology,
    wl: &Workload,
    plan: &Arc<SimPlan>,
    samples: usize,
) -> (f64, f64, f64, SimResults, SimResults) {
    let cycle_res = run_once(topo, wl, plan, EngineKind::Cycle);
    let event_res = run_once(topo, wl, plan, EngineKind::EventDriven);
    let mut cycle_times = Vec::with_capacity(samples);
    let mut event_times = Vec::with_capacity(samples);
    let mut ratios = Vec::with_capacity(samples);
    for i in 0..samples {
        let timed = |engine| {
            let t0 = Instant::now();
            let _ = run_once(topo, wl, plan, engine);
            t0.elapsed().as_nanos()
        };
        let (cycle_ns, event_ns) = if i % 2 == 0 {
            let c = timed(EngineKind::Cycle);
            let e = timed(EngineKind::EventDriven);
            (c, e)
        } else {
            let e = timed(EngineKind::EventDriven);
            let c = timed(EngineKind::Cycle);
            (c, e)
        };
        cycle_times.push(cycle_ns);
        event_times.push(event_ns);
        ratios.push(event_ns as f64 / cycle_ns.max(1) as f64);
    }
    ratios.sort_unstable_by(f64::total_cmp);
    (
        *cycle_times.iter().min().unwrap() as f64 / 1e6,
        *event_times.iter().min().unwrap() as f64 / 1e6,
        ratios[samples / 2],
        cycle_res,
        event_res,
    )
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let n: usize = args.first().map_or(64, |s| s.parse().expect("n"));
    let rate: f64 = args.get(1).map_or(0.005, |s| s.parse().expect("rate"));
    let samples: usize = args.get(2).map_or(5, |s| s.parse().expect("samples"));
    let topo = Quarc::new(n).unwrap();
    let sets = DestinationSets::random(&topo, n / 4, 1);
    let wl = Workload::new(32, rate, 0.05, sets).unwrap();
    let plan = SimPlan::build(&topo, &wl).expect("plan builds");

    println!("== Perf smoke: quarc n={n} @ rate {rate} (past the knee) ==\n");
    let (cycle_ms, event_ms, ratio, cycle_res, event_res) =
        time_engines(&topo, &wl, &plan, samples);

    // The perf gate is only meaningful if the engines ran the same
    // simulation; a divergence is a far worse bug than a slowdown.
    assert_eq!(cycle_res.cycles, event_res.cycles, "cycle counts diverged");
    assert_eq!(
        cycle_res.flit_moves, event_res.flit_moves,
        "flit moves diverged"
    );
    assert_eq!(
        cycle_res.total_absorbed, event_res.total_absorbed,
        "absorbed counts diverged"
    );

    let ec = event_res.engine;
    println!(
        "cycle engine: {cycle_ms:>8.2} ms  ({} cycles)",
        cycle_res.cycles
    );
    println!(
        "event engine: {event_ms:>8.2} ms  ({} stepped / {} total cycles, \
         {} events, {} spans x {} cycles, {} failed scans)",
        ec.simulated_cycles,
        event_res.cycles,
        ec.events_popped,
        ec.spans_batched,
        ec.span_cycles,
        ec.span_scans_failed,
    );
    println!("\nevent / cycle wall-clock: {ratio:.3} (paired-median; budget {BUDGET})");

    if ratio > BUDGET {
        eprintln!(
            "FAIL: the event engine lost to the cycle engine at high load \
             ({event_ms:.2} ms vs {cycle_ms:.2} ms)"
        );
        std::process::exit(1);
    }
    println!("OK");
}
