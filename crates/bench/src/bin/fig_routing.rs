//! Routing-scheme ablation: path-based vs dual-path vs multipath vs
//! unicast-replicated multicast, scheme × rate.
//!
//! The paper's model (§2.2, Eq. 8–16) assumes path-based multicast. This
//! binary sweeps the *routing scheme* at fixed workload on mesh, torus and
//! hypercube: every scheme runs the same destination sets over the same
//! rate grid (fractions of the path-based saturation rate), with the
//! analytical overlay evaluated everywhere it is defined. Two things are
//! visible in one table: how much latency the scheme itself costs (the
//! unicast baseline pays for source serialization, multipath wins back
//! concurrency), and where the model's path-based assumption stops being a
//! prediction (`model_applicable = no` rows).
//!
//! ```text
//! cargo run --release -p noc-bench --bin fig-routing -- [--quick] [--points N] [--json]
//! ```
//!
//! `--points N` selects the number of load fractions between 30% and 90%
//! of saturation, so `--points 2` is a CI-sized smoke sweep.

use noc_bench::cli::Options;
use noc_bench::{MulticastPattern, Result, Runner, Scenario, SweepSpec, WorkloadSpec};
use noc_topology::{RoutingSpec, TopologySpec, ALL_ROUTINGS};
use noc_workloads::table::{fmt_latency, Table};
use quarc_core::max_sustainable_rate;

fn main() -> Result<()> {
    let opts = Options::from_env();
    println!("== Routing-scheme ablation: scheme x rate, fixed workload ==\n");

    // The Quarc leads the list because it is where dual-path genuinely
    // differs from the native scheme (4-port BRCP vs 2 rim streams); on
    // mesh/torus/hypercube the native multicast *is* the Hamiltonian
    // dual-path, so those rows coincide by construction.
    let topologies = [
        TopologySpec::Quarc { n: 16 },
        TopologySpec::Mesh {
            width: 4,
            height: 4,
        },
        TopologySpec::Torus {
            width: 4,
            height: 4,
        },
        TopologySpec::Hypercube { dim: 4 },
    ];
    let points = opts.points.max(2);
    let fractions: Vec<f64> = (0..points)
        .map(|i| 0.3 + 0.6 * i as f64 / (points - 1) as f64)
        .collect();

    let runner = Runner::new().threads(opts.threads);
    let mut table = Table::new(vec![
        "topology",
        "scheme",
        "rate",
        "model_mc",
        "bound_mc",
        "sim_mc",
        "err_mc%",
        "model_applicable",
        "sim_sat",
    ]);
    let mut bound_violations = 0usize;
    for topology in topologies {
        let workload = WorkloadSpec::new(16, 0.05, MulticastPattern::Random { group: 4 });
        // One rate grid per topology, anchored at the *path-based*
        // saturation point so every scheme sees identical offered load.
        let probe = Scenario::new(
            format!("routing-probe-{topology}"),
            topology,
            workload.clone(),
            SweepSpec::Explicit { rates: vec![] },
        )
        .with_seed(opts.seed);
        let (topo, proto) = probe.materialize()?;
        let sat = max_sustainable_rate(topo.as_ref(), &proto, Default::default(), 0.01);
        let rates: Vec<f64> = fractions.iter().map(|f| f * sat).collect();
        println!("{topology}: path-based saturation {sat:.5} msg/node/cycle");

        for routing in ALL_ROUTINGS {
            let scenario = Scenario::new(
                format!("routing-{topology}-{routing}"),
                topology,
                workload.clone().with_routing(routing),
                SweepSpec::Explicit {
                    rates: rates.clone(),
                },
            )
            .with_sim(opts.sim_config())
            .with_seed(opts.seed);
            let result = runner.run(&scenario)?;
            for p in &result.points {
                table.push_row(vec![
                    topology.to_string(),
                    routing.to_string(),
                    format!("{:.5}", p.rate),
                    // Renders the model's own saturation (rate grids are
                    // anchored at *path-based* saturation, which lower-
                    // capacity schemes exceed) as "saturated", not NaN.
                    fmt_latency(p.model_multicast),
                    fmt_latency(p.bound_multicast),
                    format!("{:.2}", p.sim_multicast),
                    p.multicast_error()
                        .map(|e| format!("{:.1}", e * 100.0))
                        .unwrap_or_else(|| "-".into()),
                    if p.model_applicable { "yes" } else { "no" }.into(),
                    if p.sim_saturated { "yes" } else { "no" }.into(),
                ]);
                if p.bound_multicast.is_finite()
                    && p.sim_multicast.is_finite()
                    && !p.sim_saturated
                    && p.bound_multicast < p.sim_multicast
                {
                    bound_violations += 1;
                    eprintln!(
                        "BOUND VIOLATION: {topology}/{routing} rate {:.5}: \
                         calculus bound {:.2} < simulated mean {:.2}",
                        p.rate, p.bound_multicast, p.sim_multicast
                    );
                }
            }
            if opts.json {
                let path = result.write_json(&opts.out)?;
                println!("wrote {}", path.display());
            }
        }
    }
    println!("\n{}", table.to_aligned());
    match opts.write_csv("fig-routing.csv", &table.to_csv()) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }

    // Schemes that need concurrent injection ports are *typed* spec
    // errors on one-port topologies, not panics deep inside a sweep.
    let one_port = TopologySpec::Spidergon { n: 8 };
    let rejected = Scenario::new(
        "routing-spidergon-multipath",
        one_port,
        WorkloadSpec::new(16, 0.05, MulticastPattern::Random { group: 2 })
            .with_routing(RoutingSpec::Multipath),
        SweepSpec::Explicit { rates: vec![1e-3] },
    )
    .validate()
    .expect_err("multipath needs multi-port routers");
    println!("\n{one_port}: {rejected}");
    println!(
        "\nPath-based rows reproduce the paper's scheme; unicast rows are the\n\
         no-hardware-support baseline whose source serialization the model does not\n\
         see (model_applicable = no). The dual-path/multipath gaps are the ablation:\n\
         where partitioning the destination set shifts the latency curve (cf.\n\
         arXiv:1610.00751, arXiv:2108.00566)."
    );
    assert_eq!(
        bound_violations, 0,
        "{bound_violations} network-calculus bound(s) fell below the simulated mean"
    );
    Ok(())
}
