//! Regenerates **Figure 2** of the paper: the Quarc topology vs the
//! Spidergon topology (8 nodes), as Graphviz DOT plus an ASCII channel
//! census. The doubled cross link of the Quarc is visible as two dashed
//! `n0 -> n4` edges where the Spidergon has one.
//!
//! Both networks are constructed through the [`TopologySpec`] registry —
//! the same spec strings a scenario file would use.
//!
//! ```text
//! cargo run --release -p noc-bench --bin fig2-topology
//! ```

use noc_bench::cli::Options;
use noc_bench::Result;
use noc_topology::render::{channel_census, ring_ascii, to_dot};
use noc_topology::TopologySpec;

fn main() -> Result<()> {
    let opts = Options::from_env();
    let quarc = TopologySpec::parse("quarc-8")?.build()?;
    let spidergon = TopologySpec::parse("spidergon-8")?.build()?;

    println!("== Figure 2(a): Quarc, N = 8 ==\n");
    println!("{}", ring_ascii(quarc.as_ref()));
    let (inj, link, ej) = channel_census(quarc.as_ref());
    println!("channels: {inj} injection + {link} link + {ej} ejection\n");

    println!("== Figure 2(b): Spidergon, N = 8 ==\n");
    println!("{}", ring_ascii(spidergon.as_ref()));
    let (inj, link, ej) = channel_census(spidergon.as_ref());
    println!("channels: {inj} injection + {link} link + {ej} ejection\n");

    let a = opts.write_csv("fig2-quarc.dot", &to_dot(quarc.as_ref()))?;
    let b = opts.write_csv("fig2-spidergon.dot", &to_dot(spidergon.as_ref()))?;
    println!("wrote {} and {}", a.display(), b.display());
    Ok(())
}
