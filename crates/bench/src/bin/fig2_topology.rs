//! Regenerates **Figure 2** of the paper: the Quarc topology vs the
//! Spidergon topology (8 nodes), as Graphviz DOT plus an ASCII channel
//! census. The doubled cross link of the Quarc is visible as two dashed
//! `n0 -> n4` edges where the Spidergon has one.
//!
//! ```text
//! cargo run --release -p noc-bench --bin fig2-topology
//! ```

use noc_bench::cli::Options;
use noc_topology::render::{channel_census, ring_ascii, to_dot};
use noc_topology::{Quarc, Spidergon};

fn main() {
    let opts = Options::from_env();
    let quarc = Quarc::new(8).expect("8-node Quarc");
    let spidergon = Spidergon::new(8).expect("8-node Spidergon");

    println!("== Figure 2(a): Quarc, N = 8 ==\n");
    println!("{}", ring_ascii(&quarc));
    let (inj, link, ej) = channel_census(&quarc);
    println!("channels: {inj} injection + {link} link + {ej} ejection\n");

    println!("== Figure 2(b): Spidergon, N = 8 ==\n");
    println!("{}", ring_ascii(&spidergon));
    let (inj, link, ej) = channel_census(&spidergon);
    println!("channels: {inj} injection + {link} link + {ej} ejection\n");

    let dot_q = to_dot(&quarc);
    let dot_s = to_dot(&spidergon);
    match (
        opts.write_csv("fig2-quarc.dot", &dot_q),
        opts.write_csv("fig2-spidergon.dot", &dot_s),
    ) {
        (Ok(a), Ok(b)) => println!("wrote {} and {}", a.display(), b.display()),
        _ => eprintln!("dot write failed"),
    }
}
