//! The paper's stated future work (§5): applying the multi-port multicast
//! model to mesh and torus topologies.
//!
//! Unicast uses XY / dimension-ordered routing; multicast uses the
//! dual-path Hamiltonian scheme (two asynchronous streams, `m = 2`). Both
//! networks share one declarative [`Scenario`] shape — only the
//! [`TopologySpec`] differs — executed by the common [`Runner`]: the same
//! validation protocol as Fig. 6, transplanted to the new networks.
//!
//! ```text
//! cargo run --release -p noc-bench --bin mesh-extension -- [--quick] [--json]
//! ```

use noc_bench::cli::Options;
use noc_bench::{MulticastPattern, Result, Runner, Scenario, SweepSpec, WorkloadSpec};
use noc_topology::TopologySpec;
use noc_workloads::table::{fmt_latency, Table};

fn scenario(topology: TopologySpec, opts: &Options) -> Scenario {
    Scenario::new(
        format!("mesh-extension-{topology}"),
        topology,
        WorkloadSpec::new(
            32,
            0.05,
            MulticastPattern::Random {
                group: topology.num_nodes() / 4,
            },
        ),
        SweepSpec::SaturationFractions {
            fractions: vec![0.3, 0.6, 0.9],
        },
    )
    .with_sim(opts.sim_config())
    .with_seed(opts.seed)
}

fn main() -> Result<()> {
    let opts = Options::from_env();
    println!("== Extension: multi-port mesh and torus (paper §5 future work) ==\n");
    println!("unicast: XY routing; multicast: dual-path Hamiltonian (m = 2)\n");
    let mut table = Table::new(vec![
        "topology",
        "rate",
        "model_uni",
        "sim_uni",
        "model_mc",
        "sim_mc",
        "err_mc%",
    ]);
    let runner = Runner::new().threads(opts.threads);
    for topology in [
        TopologySpec::Mesh {
            width: 4,
            height: 4,
        },
        TopologySpec::Torus {
            width: 4,
            height: 4,
        },
    ] {
        let sc = scenario(topology, &opts);
        let result = runner.run(&sc)?;
        for p in &result.points {
            table.push_row(vec![
                topology.kind_name().to_string(),
                format!("{:.5}", p.rate),
                fmt_latency(p.model_unicast),
                fmt_latency(p.sim_unicast),
                fmt_latency(p.model_multicast),
                fmt_latency(p.sim_multicast),
                p.multicast_error()
                    .map(|e| format!("{:.1}", e * 100.0))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        if opts.json {
            result.write_json(&opts.out)?;
        }
    }
    println!("{}", table.to_aligned());
    if let Ok(p) = opts.write_csv("mesh-extension.csv", &table.to_csv()) {
        println!("wrote {}", p.display());
    }
    Ok(())
}
