//! The paper's stated future work (§5): applying the multi-port multicast
//! model to mesh and torus topologies.
//!
//! Unicast uses XY / dimension-ordered routing; multicast uses the
//! dual-path Hamiltonian scheme (two asynchronous streams, `m = 2`). The
//! table compares the analytical model against the flit-level simulator on
//! both topologies across a small rate sweep — the same validation protocol
//! as Fig. 6, transplanted to the new networks.
//!
//! ```text
//! cargo run --release -p noc-bench --bin mesh-extension -- [--quick]
//! ```

use noc_bench::cli::Options;
use noc_sim::build_engine;
use noc_topology::{Mesh, MeshKind, Topology};
use noc_workloads::table::{fmt_latency, Table};
use noc_workloads::{DestinationSets, Workload};
use quarc_core::{max_sustainable_rate, AnalyticModel, ModelOptions};

fn run(topo: &dyn Topology, opts: &Options, table: &mut Table) {
    let sets = DestinationSets::random(topo, topo.num_nodes() / 4, opts.seed);
    let proto = Workload::new(32, 1e-5, 0.05, sets).unwrap();
    let mo = ModelOptions::default();
    let sat = max_sustainable_rate(topo, &proto, mo, 0.01);
    for frac in [0.3, 0.6, 0.9] {
        let rate = sat * frac;
        let wl = proto.at_rate(rate).unwrap();
        let (mu, mm) = match AnalyticModel::new(topo, &wl, mo).evaluate() {
            Ok(p) => (p.unicast_latency, p.multicast_latency),
            Err(_) => (f64::NAN, f64::NAN),
        };
        let sim = build_engine(topo, &wl, opts.sim_config()).run();
        let err = if mm.is_finite() && sim.multicast.mean > 0.0 {
            format!(
                "{:.1}",
                (mm - sim.multicast.mean).abs() / sim.multicast.mean * 100.0
            )
        } else {
            "-".into()
        };
        table.push_row(vec![
            topo.name().to_string(),
            format!("{:.5}", rate),
            fmt_latency(mu),
            fmt_latency(sim.unicast.mean),
            fmt_latency(mm),
            fmt_latency(sim.multicast.mean),
            err,
        ]);
    }
}

fn main() {
    let opts = Options::from_env();
    println!("== Extension: multi-port mesh and torus (paper §5 future work) ==\n");
    println!("unicast: XY routing; multicast: dual-path Hamiltonian (m = 2)\n");
    let mut table = Table::new(vec![
        "topology",
        "rate",
        "model_uni",
        "sim_uni",
        "model_mc",
        "sim_mc",
        "err_mc%",
    ]);
    let mesh = Mesh::new(4, 4, MeshKind::Mesh).unwrap();
    run(&mesh, &opts, &mut table);
    let torus = Mesh::new(4, 4, MeshKind::Torus).unwrap();
    run(&torus, &opts, &mut table);
    println!("{}", table.to_aligned());
    if let Ok(p) = opts.write_csv("mesh-extension.csv", &table.to_csv()) {
        println!("wrote {}", p.display());
    }
}
