//! Extension: the multi-port model on the binary hypercube — the topology
//! family of the paper's predecessor work (Shahrabi et al., MASCOTS 2000,
//! ref.\[18\]), which modelled broadcast with one-port routers and
//! non-wormhole collectives. Here the hypercube gets one port per
//! dimension, e-cube wormhole unicast and Gray-code dual-path multicast,
//! and the same model-vs-simulation validation protocol as Fig. 6.
//!
//! ```text
//! cargo run --release -p noc-bench --bin hypercube-extension -- [--quick]
//! ```

use noc_bench::cli::Options;
use noc_sim::build_engine;
use noc_topology::{Hypercube, Topology};
use noc_workloads::table::{fmt_latency, Table};
use noc_workloads::{DestinationSets, Workload};
use quarc_core::{max_sustainable_rate, AnalyticModel, ModelOptions};

fn main() {
    let opts = Options::from_env();
    println!("== Extension: multi-port hypercube (cf. paper ref. 18) ==\n");
    println!("unicast: e-cube; multicast: Gray-code dual-path (m = 2)\n");
    let mut table = Table::new(vec![
        "dim",
        "nodes",
        "rate",
        "model_uni",
        "sim_uni",
        "model_mc",
        "sim_mc",
        "err_mc%",
    ]);
    for dim in [3usize, 4, 5] {
        let topo = Hypercube::new(dim).unwrap();
        let n = topo.num_nodes();
        let sets = DestinationSets::random(&topo, n / 4, opts.seed);
        let proto = Workload::new(32, 1e-5, 0.05, sets).unwrap();
        let mo = ModelOptions::default();
        let sat = max_sustainable_rate(&topo, &proto, mo, 0.01);
        for frac in [0.35, 0.7] {
            let wl = proto.at_rate(sat * frac).unwrap();
            let (mu, mm) = match AnalyticModel::new(&topo, &wl, mo).evaluate() {
                Ok(p) => (p.unicast_latency, p.multicast_latency),
                Err(_) => (f64::NAN, f64::NAN),
            };
            let sim = build_engine(&topo, &wl, opts.sim_config()).run();
            let err = if mm.is_finite() && sim.multicast.mean > 0.0 {
                format!(
                    "{:.1}",
                    (mm - sim.multicast.mean).abs() / sim.multicast.mean * 100.0
                )
            } else {
                "-".into()
            };
            table.push_row(vec![
                dim.to_string(),
                n.to_string(),
                format!("{:.5}", sat * frac),
                fmt_latency(mu),
                fmt_latency(sim.unicast.mean),
                fmt_latency(mm),
                fmt_latency(sim.multicast.mean),
                err,
            ]);
        }
    }
    println!("{}", table.to_aligned());
    if let Ok(p) = opts.write_csv("hypercube-extension.csv", &table.to_csv()) {
        println!("wrote {}", p.display());
    }
}
