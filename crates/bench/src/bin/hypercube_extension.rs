//! Extension: the multi-port model on the binary hypercube — the topology
//! family of the paper's predecessor work (Shahrabi et al., MASCOTS 2000,
//! ref.\[18\]), which modelled broadcast with one-port routers and
//! non-wormhole collectives. Here the hypercube gets one port per
//! dimension, e-cube wormhole unicast and Gray-code dual-path multicast,
//! and the same model-vs-simulation validation protocol as Fig. 6 — one
//! [`Scenario`] per dimension, all through the shared [`Runner`].
//!
//! ```text
//! cargo run --release -p noc-bench --bin hypercube-extension -- [--quick] [--json]
//! ```

use noc_bench::cli::Options;
use noc_bench::{MulticastPattern, Result, Runner, Scenario, SweepSpec, WorkloadSpec};
use noc_topology::TopologySpec;
use noc_workloads::table::{fmt_latency, Table};

fn main() -> Result<()> {
    let opts = Options::from_env();
    println!("== Extension: multi-port hypercube (cf. paper ref. 18) ==\n");
    println!("unicast: e-cube; multicast: Gray-code dual-path (m = 2)\n");
    let mut table = Table::new(vec![
        "dim",
        "nodes",
        "rate",
        "model_uni",
        "sim_uni",
        "model_mc",
        "sim_mc",
        "err_mc%",
    ]);
    let runner = Runner::new().threads(opts.threads);
    for dim in [3usize, 4, 5] {
        let topology = TopologySpec::Hypercube { dim };
        let n = topology.num_nodes();
        let sc = Scenario::new(
            format!("hypercube-extension-{topology}"),
            topology,
            WorkloadSpec::new(32, 0.05, MulticastPattern::Random { group: n / 4 }),
            SweepSpec::SaturationFractions {
                fractions: vec![0.35, 0.7],
            },
        )
        .with_sim(opts.sim_config())
        .with_seed(opts.seed);
        let result = runner.run(&sc)?;
        for p in &result.points {
            table.push_row(vec![
                dim.to_string(),
                n.to_string(),
                format!("{:.5}", p.rate),
                fmt_latency(p.model_unicast),
                fmt_latency(p.sim_unicast),
                fmt_latency(p.model_multicast),
                fmt_latency(p.sim_multicast),
                p.multicast_error()
                    .map(|e| format!("{:.1}", e * 100.0))
                    .unwrap_or_else(|| "-".into()),
            ]);
        }
        if opts.json {
            result.write_json(&opts.out)?;
        }
    }
    println!("{}", table.to_aligned());
    if let Ok(p) = opts.write_csv("hypercube-extension.csv", &table.to_csv()) {
        println!("wrote {}", p.display());
    }
    Ok(())
}
