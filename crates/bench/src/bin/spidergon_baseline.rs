//! Baseline comparison motivating the Quarc (paper §3.1–3.2): collective
//! latency of the Quarc's true multicast vs the Spidergon's
//! broadcast-by-consecutive-unicast, measured in simulation on otherwise
//! idle networks. Each `(topology, N)` cell is a broadcast [`Scenario`]
//! measured through [`Runner::isolated_multicast`].
//!
//! The paper's qualitative claims reproduced here:
//!
//! * a Quarc broadcast visits each quadrant in `N/4` link hops, while the
//!   Spidergon needs `N − 1` consecutive unicasts through one port;
//! * the Quarc broadcast latency is therefore dramatically lower and the
//!   gap widens with `N`.
//!
//! ```text
//! cargo run --release -p noc-bench --bin spidergon-baseline
//! ```

use noc_bench::cli::Options;
use noc_bench::{MulticastPattern, Result, Runner, Scenario, SweepSpec, WorkloadSpec};
use noc_sim::SimConfig;
use noc_topology::{NodeId, TopologySpec};
use noc_workloads::table::Table;

/// Zero-load broadcast latency: one broadcast injected on an idle network.
fn idle_broadcast_latency(topology: TopologySpec, msg_len: u32) -> Result<u64> {
    let sc = Scenario::new(
        format!("idle-broadcast-{topology}"),
        topology,
        WorkloadSpec::new(msg_len, 0.0, MulticastPattern::Broadcast),
        SweepSpec::Explicit { rates: vec![] },
    )
    .with_sim(SimConfig::quick(1))
    .with_seed(1);
    Runner::new().isolated_multicast(&sc, NodeId(0))
}

fn main() -> Result<()> {
    let opts = Options::from_env();
    println!("== Baseline: Quarc true multicast vs Spidergon unicast train ==\n");
    let msg = 32u32;
    let mut table = Table::new(vec![
        "N",
        "quarc_bcast",
        "spidergon_bcast",
        "speedup",
        "quarc_links",
        "spidergon_msgs",
    ]);
    for n in [8usize, 16, 32, 64] {
        let ql = idle_broadcast_latency(TopologySpec::Quarc { n }, msg)?;
        let sl = idle_broadcast_latency(TopologySpec::Spidergon { n }, msg)?;
        table.push_row(vec![
            n.to_string(),
            ql.to_string(),
            sl.to_string(),
            format!("{:.1}x", sl as f64 / ql as f64),
            (n / 4).to_string(),
            (n - 1).to_string(),
        ]);
    }
    println!("zero-load broadcast latency, {msg}-flit messages (cycles):");
    println!("{}", table.to_aligned());
    if let Ok(p) = opts.write_csv("spidergon-baseline.csv", &table.to_csv()) {
        println!("wrote {}", p.display());
    }
    Ok(())
}
