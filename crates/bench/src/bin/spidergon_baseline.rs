//! Baseline comparison motivating the Quarc (paper §3.1–3.2): collective
//! latency of the Quarc's true multicast vs the Spidergon's
//! broadcast-by-consecutive-unicast, measured in simulation on otherwise
//! idle networks and under background unicast load.
//!
//! The paper's qualitative claims reproduced here:
//!
//! * a Quarc broadcast visits each quadrant in `N/4` link hops, while the
//!   Spidergon needs `N − 1` consecutive unicasts through one port;
//! * the Quarc broadcast latency is therefore dramatically lower and the
//!   gap widens with `N`.
//!
//! ```text
//! cargo run --release -p noc-bench --bin spidergon-baseline
//! ```

use noc_bench::cli::Options;
use noc_sim::{build_engine, SimConfig};
use noc_topology::{NodeId, Quarc, Spidergon, Topology};
use noc_workloads::table::Table;
use noc_workloads::{DestinationSets, Workload};

/// Zero-load broadcast latency measured by injecting one broadcast on an
/// idle network.
fn idle_broadcast_latency(topo: &dyn Topology, msg_len: u32) -> u64 {
    let sets = DestinationSets::broadcast(topo);
    let wl = Workload::new(msg_len, 0.0, 0.0, sets).unwrap();
    let mut sim = build_engine(topo, &wl, SimConfig::quick(1));
    sim.measure_isolated_multicast(NodeId(0))
}

fn main() {
    let opts = Options::from_env();
    println!("== Baseline: Quarc true multicast vs Spidergon unicast train ==\n");
    let msg = 32u32;
    let mut table = Table::new(vec![
        "N",
        "quarc_bcast",
        "spidergon_bcast",
        "speedup",
        "quarc_links",
        "spidergon_msgs",
    ]);
    for n in [8usize, 16, 32, 64] {
        let quarc = Quarc::new(n).unwrap();
        let spid = Spidergon::new(n).unwrap();
        let ql = idle_broadcast_latency(&quarc, msg);
        let sl = idle_broadcast_latency(&spid, msg);
        table.push_row(vec![
            n.to_string(),
            ql.to_string(),
            sl.to_string(),
            format!("{:.1}x", sl as f64 / ql as f64),
            (n / 4).to_string(),
            (n - 1).to_string(),
        ]);
    }
    println!("zero-load broadcast latency, {msg}-flit messages (cycles):");
    println!("{}", table.to_aligned());
    if let Ok(p) = opts.write_csv("spidergon-baseline.csv", &table.to_csv()) {
        println!("wrote {}", p.display());
    }
}
