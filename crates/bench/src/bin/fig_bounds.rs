//! Worst-case bound vs simulation: the network-calculus backend's
//! cross-validation panels.
//!
//! The M/G/1 overlay predicts *means* and is only sound for Poisson
//! traffic on path-based/dual-path streams. The network-calculus backend
//! ([`quarc_core::NetworkCalculusBackend`]) predicts *worst-case bounds*
//! for every traffic process and routing scheme; its saturation estimate
//! also anchors saturation-relative sweeps wherever M/G/1 is
//! inapplicable. This binary runs the backend end-to-end on panels that
//! cross the M/G/1 domain boundary in both directions — routing
//! (path-based vs multipath) and traffic (geometric vs on/off bursts) —
//! and hard-checks the invariant that makes a bound a bound:
//!
//! > wherever the bound is finite and the simulator is not saturated,
//! > `bound ≥ simulated mean`.
//!
//! Any violation is printed and the process exits nonzero, so the CI
//! smoke run of this binary is a real gate, not a demo.
//!
//! ```text
//! cargo run --release -p noc-bench --bin fig-bounds -- [--quick] [--points N] [--json]
//! ```

use noc_bench::cli::Options;
use noc_bench::{MulticastPattern, Result, Runner, Scenario, SweepSpec, WorkloadSpec};
use noc_topology::{RoutingSpec, TopologySpec};
use noc_workloads::table::{fmt_latency, Table};
use noc_workloads::TrafficSpec;
use quarc_core::{BackendSpec, ModelOptions};

fn main() -> Result<()> {
    let opts = Options::from_env();
    println!("== Network-calculus bounds vs simulation (backend = nc) ==\n");

    let topologies = [
        TopologySpec::Quarc { n: 16 },
        TopologySpec::Mesh {
            width: 4,
            height: 4,
        },
    ];
    let routings = [RoutingSpec::PathBased, RoutingSpec::Multipath];
    let traffics = [
        ("geometric", TrafficSpec::Geometric),
        (
            "onoff",
            TrafficSpec::OnOff {
                burst_len: 8.0,
                peak_rate: 0.2,
            },
        ),
    ];
    let points = opts.points.max(2);
    // Fractions of the *calculus* saturation anchor: selecting the nc
    // backend makes SweepSpec::resolve bisect its worst-case stability
    // horizon, which is exactly the fix for saturation-relative sweeps on
    // workloads the M/G/1 model cannot anchor.
    let fractions: Vec<f64> = (0..points)
        .map(|i| 0.3 + 0.6 * i as f64 / (points - 1) as f64)
        .collect();
    let model = ModelOptions {
        backend: BackendSpec::NetworkCalculus,
        ..ModelOptions::default()
    };

    let runner = Runner::new().threads(opts.threads);
    let mut table = Table::new(vec![
        "topology",
        "scheme",
        "traffic",
        "rate",
        "bound_uni",
        "sim_uni",
        "bound_mc",
        "sim_mc",
        "sim_sat",
        "bound_ok",
    ]);
    let mut violations = 0usize;
    let mut finite_points = 0usize;
    for topology in topologies {
        for routing in routings {
            for (traffic_name, traffic) in &traffics {
                let scenario = Scenario::new(
                    format!("bounds-{topology}-{routing}-{traffic_name}"),
                    topology,
                    WorkloadSpec::new(16, 0.05, MulticastPattern::Random { group: 4 })
                        .with_routing(routing)
                        .with_traffic(traffic.clone()),
                    SweepSpec::SaturationFractions {
                        fractions: fractions.clone(),
                    },
                )
                .with_sim(opts.sim_config())
                .with_seed(opts.seed)
                .with_model(Some(model));
                let result = runner.run(&scenario)?;
                for p in &result.points {
                    let comparable = p.bound_multicast.is_finite()
                        && p.sim_multicast.is_finite()
                        && !p.sim_saturated;
                    let ok = !comparable
                        || (p.bound_multicast >= p.sim_multicast
                            && (!p.bound_unicast.is_finite()
                                || !p.sim_unicast.is_finite()
                                || p.bound_unicast >= p.sim_unicast));
                    if comparable {
                        finite_points += 1;
                    }
                    if !ok {
                        violations += 1;
                        eprintln!(
                            "BOUND VIOLATION: {topology}/{routing}/{traffic_name} \
                             rate {:.5}: bound ({:.2}, {:.2}) vs sim ({:.2}, {:.2})",
                            p.rate,
                            p.bound_unicast,
                            p.bound_multicast,
                            p.sim_unicast,
                            p.sim_multicast
                        );
                    }
                    table.push_row(vec![
                        topology.to_string(),
                        routing.to_string(),
                        (*traffic_name).into(),
                        format!("{:.5}", p.rate),
                        fmt_latency(p.bound_unicast),
                        format!("{:.2}", p.sim_unicast),
                        fmt_latency(p.bound_multicast),
                        format!("{:.2}", p.sim_multicast),
                        if p.sim_saturated { "yes" } else { "no" }.into(),
                        if !comparable {
                            "-".into()
                        } else if ok {
                            "yes".to_string()
                        } else {
                            "NO".into()
                        },
                    ]);
                }
                if opts.json {
                    let path = result.write_json(&opts.out)?;
                    println!("wrote {}", path.display());
                }
            }
        }
    }
    println!("{}", table.to_aligned());
    match opts.write_csv("fig-bounds.csv", &table.to_csv()) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    println!(
        "\nEvery row sweeps fractions of the calculus backend's own saturation\n\
         anchor — including multipath routing and on/off bursts, where the M/G/1\n\
         model cannot place the knee. bound_ok checks bound >= simulated mean\n\
         per comparable row ({finite_points} comparable point(s))."
    );
    assert!(
        finite_points > 0,
        "no comparable (finite bound, unsaturated sim) points — panels mis-anchored"
    );
    assert_eq!(
        violations, 0,
        "{violations} network-calculus bound(s) fell below the simulated mean"
    );
    println!("\nbound >= simulated mean held on all comparable points.");
    Ok(())
}
