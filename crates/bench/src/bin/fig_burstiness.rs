//! Burstiness ablation: where the Poisson assumption of the analytical
//! model breaks.
//!
//! The paper's model (and its validation protocol, §4) assumes per-node
//! Poisson injection. This binary holds the *mean* rate fixed at 50% of
//! the model's saturation rate on a 16-node Quarc and sweeps the
//! *burstiness* of the arrival process: on/off sources with mean burst
//! lengths 1, 2, 4, … messages at a fixed peak rate. The model overlay is
//! evaluated unchanged at every point (it only sees the mean rate), so
//! the chart is the model-vs-simulation divergence as a function of burst
//! length — the ablation the traffic subsystem exists for. Each point is
//! annotated with the runner's model-applicability flag.
//!
//! ```text
//! cargo run --release -p noc-bench --bin fig-burstiness -- [--quick] [--points N] [--json]
//! ```
//!
//! `--points N` selects the number of burst lengths (powers of two from
//! 1), so `--points 2` is a CI-sized smoke sweep.

use noc_bench::cli::Options;
use noc_bench::{MulticastPattern, Result, Runner, Scenario, SweepSpec, WorkloadSpec};
use noc_topology::TopologySpec;
use noc_workloads::table::Table;
use noc_workloads::TrafficSpec;
use quarc_core::max_sustainable_rate;

fn main() -> Result<()> {
    let opts = Options::from_env();
    println!("== Burstiness ablation: model (Poisson) vs simulation (on/off traffic) ==\n");

    let topology = TopologySpec::Quarc { n: 16 };
    let workload = WorkloadSpec::new(16, 0.05, MulticastPattern::Random { group: 4 });

    // Fix the operating point at 50% of the model's saturation rate and
    // pick a peak rate well above it, so every burst length below draws
    // the same mean load.
    let probe = Scenario::new("burstiness-probe", topology, workload.clone(), {
        SweepSpec::Explicit { rates: vec![] }
    })
    .with_seed(opts.seed);
    let (topo, proto) = probe.materialize()?;
    let sat = max_sustainable_rate(topo.as_ref(), &proto, Default::default(), 0.01);
    let rate = 0.5 * sat;
    let peak_rate = (8.0 * rate).min(0.8);
    println!(
        "operating point: rate {rate:.5} msg/node/cycle (50% of saturation {sat:.5}), \
         on/off peak rate {peak_rate:.5}\n"
    );

    let runner = Runner::new().threads(opts.threads);
    let mut table = Table::new(vec![
        "burst_len",
        "model_mc",
        "sim_mc",
        "divergence%",
        "sim_sat",
        "model_applicable",
    ]);
    for i in 0..opts.points as u32 {
        let burst_len = f64::from(1u32 << i);
        let traffic = if burst_len == 1.0 {
            // Burst length 1 is the Poisson baseline: run it as the
            // genuine geometric source so the model flag stays `yes`.
            TrafficSpec::Geometric
        } else {
            TrafficSpec::OnOff {
                burst_len,
                peak_rate,
            }
        };
        let scenario = Scenario::new(
            format!("burstiness-b{burst_len}"),
            topology,
            workload.clone().with_traffic(traffic),
            SweepSpec::Explicit { rates: vec![rate] },
        )
        .with_sim(opts.sim_config())
        .with_seed(opts.seed);
        let result = runner.run(&scenario)?;
        let p = &result.points[0];
        table.push_row(vec![
            format!("{burst_len}"),
            format!("{:.2}", p.model_multicast),
            format!("{:.2}", p.sim_multicast),
            p.multicast_error()
                .map(|e| format!("{:.1}", e * 100.0))
                .unwrap_or_else(|| "-".into()),
            if p.sim_saturated { "yes" } else { "no" }.into(),
            if p.model_applicable { "yes" } else { "no" }.into(),
        ]);
        if opts.json {
            let path = result.write_json(&opts.out)?;
            println!("wrote {}", path.display());
        }
    }
    println!("{}", table.to_aligned());
    match opts.write_csv("fig-burstiness.csv", &table.to_csv()) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    println!(
        "\nThe model only sees the mean rate; rising divergence with burst length is the\n\
         Poisson assumption visibly breaking (cf. the network-calculus critique of\n\
         arXiv:1007.4853). Points with model_applicable = no carry the same warning in\n\
         their JSON results."
    );
    Ok(())
}
