//! The workspace-level experiment error type.
//!
//! Every layer of the stack reports failures through its own typed error
//! (topology constructors, workload validation, sweep grids, the
//! analytical model); [`Error`] folds them into one type so scenario
//! construction and execution compose with `?` end-to-end — the
//! `unwrap()`/`assert!` seams the pre-`Scenario` harness relied on are
//! gone from the public surface.

use noc_topology::{PathError, RoutingError, TopologyError};
use noc_workloads::{PatternError, SweepError, WorkloadError};
use quarc_core::ModelError;
use std::fmt;

/// Any failure an experiment can produce, from spec parsing to sinks.
#[derive(Debug)]
pub enum Error {
    /// Topology construction or registry lookup failed.
    Topology(TopologyError),
    /// Workload parameters were invalid.
    Workload(WorkloadError),
    /// A unicast traffic pattern does not fit the topology (e.g. bit
    /// reversal on a node count that is not a power of two).
    Pattern(PatternError),
    /// The multicast routing scheme cannot be realized on the topology
    /// (e.g. multipath on a one-port node).
    Routing(RoutingError),
    /// A routed path failed structural validation against its network
    /// (surfaced by diagnostics that audit implicit topologies against
    /// the materialized oracle).
    Path(PathError),
    /// Rate-sweep construction failed.
    Sweep(SweepError),
    /// The analytical model could not be evaluated where a finite result
    /// was required (the in-sweep overlay maps saturation to `NaN`
    /// instead of erroring).
    Model(ModelError),
    /// Scenario-level validation failed (inconsistent fields, bad
    /// simulator configuration, out-of-range resolved rates).
    InvalidScenario(String),
    /// Serialization or deserialization of a spec/result failed.
    Serde(serde::Error),
    /// A result sink could not be written.
    Io(std::io::Error),
}

/// Workspace result alias.
pub type Result<T> = std::result::Result<T, Error>;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Topology(e) => write!(f, "topology: {e}"),
            Error::Workload(e) => write!(f, "workload: {e}"),
            Error::Pattern(e) => write!(f, "traffic pattern: {e}"),
            Error::Routing(e) => write!(f, "multicast routing: {e}"),
            Error::Path(e) => write!(f, "path validation: {e}"),
            Error::Sweep(e) => write!(f, "sweep: {e}"),
            Error::Model(e) => write!(f, "model: {e}"),
            Error::InvalidScenario(msg) => write!(f, "invalid scenario: {msg}"),
            Error::Serde(e) => write!(f, "serialization: {e}"),
            Error::Io(e) => write!(f, "io: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Topology(e) => Some(e),
            Error::Workload(e) => Some(e),
            Error::Pattern(e) => Some(e),
            Error::Routing(e) => Some(e),
            Error::Path(e) => Some(e),
            Error::Sweep(e) => Some(e),
            Error::Model(e) => Some(e),
            Error::Serde(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::InvalidScenario(_) => None,
        }
    }
}

impl From<TopologyError> for Error {
    fn from(e: TopologyError) -> Self {
        Error::Topology(e)
    }
}

impl From<WorkloadError> for Error {
    fn from(e: WorkloadError) -> Self {
        Error::Workload(e)
    }
}

impl From<PatternError> for Error {
    fn from(e: PatternError) -> Self {
        Error::Pattern(e)
    }
}

impl From<noc_workloads::TrafficError> for Error {
    fn from(e: noc_workloads::TrafficError) -> Self {
        Error::Workload(WorkloadError::Traffic(e))
    }
}

impl From<RoutingError> for Error {
    fn from(e: RoutingError) -> Self {
        Error::Routing(e)
    }
}

impl From<PathError> for Error {
    fn from(e: PathError) -> Self {
        Error::Path(e)
    }
}

impl From<SweepError> for Error {
    fn from(e: SweepError) -> Self {
        Error::Sweep(e)
    }
}

impl From<ModelError> for Error {
    fn from(e: ModelError) -> Self {
        Error::Model(e)
    }
}

impl From<noc_sim::PlanError> for Error {
    fn from(e: noc_sim::PlanError) -> Self {
        match e {
            noc_sim::PlanError::Pattern(p) => Error::Pattern(p),
            noc_sim::PlanError::Routing(r) => Error::Routing(r),
            noc_sim::PlanError::Traffic(t) => Error::Workload(WorkloadError::Traffic(t)),
            e @ (noc_sim::PlanError::TooFewNodes(_)
            | noc_sim::PlanError::EmptyMulticastSet { .. }) => {
                Error::InvalidScenario(e.to_string())
            }
        }
    }
}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::Serde(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_layer_folds_in() {
        let errs: Vec<Error> = vec![
            TopologyError::UnknownTopology {
                name: "warp".into(),
            }
            .into(),
            WorkloadError::ZeroLengthMessage.into(),
            noc_workloads::PatternError::RequiresPowerOfTwo {
                pattern: "shuffle",
                n: 12,
            }
            .into(),
            noc_workloads::TrafficError::InvalidPeakRate(1.5).into(),
            RoutingError::SingleInjectionPort {
                scheme: "multipath",
                ports: 1,
            }
            .into(),
            PathError::TooShort { hops: 1 }.into(),
            SweepError::TooFewPoints(1).into(),
            ModelError::NonConcurrentMulticast.into(),
            ModelError::UnsupportedTopology { name: "min".into() }.into(),
            noc_sim::PlanError::EmptyMulticastSet { node: 3 }.into(),
            noc_sim::PlanError::Routing(RoutingError::SingleInjectionPort {
                scheme: "multipath",
                ports: 1,
            })
            .into(),
            serde::Error::custom("bad json").into(),
            std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into(),
            Error::InvalidScenario("replicates must be >= 1".into()),
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn sources_chain() {
        let e: Error = WorkloadError::InvalidRate(2.0).into();
        assert!(std::error::Error::source(&e).is_some());
        let e = Error::InvalidScenario("x".into());
        assert!(std::error::Error::source(&e).is_none());
    }
}
