//! The model-vs-simulation experiment harness behind Fig. 6 and Fig. 7.

use noc_sim::{build_engine_with_plan, SimConfig, SimPlan};
use noc_topology::Quarc;
use noc_workloads::table::{fmt_latency, Table};
use noc_workloads::{parallel_map, DestinationSets, RateSweep, Workload};
use quarc_core::{max_sustainable_rate, AnalyticModel, ModelOptions};
use std::sync::Arc;

/// Destination-set spatial pattern (the difference between Fig. 6 and
/// Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// Uniformly random destinations (Fig. 6).
    Random,
    /// Destinations localized on a single rim quadrant (Fig. 7).
    Localized,
}

/// One panel of a figure: a `(N, M, α, pattern)` configuration whose
/// latency is swept over the generation rate.
#[derive(Clone, Debug)]
pub struct FigureConfig {
    /// Quarc size `N`.
    pub n: usize,
    /// Message length `M` in flits.
    pub msg_len: u32,
    /// Multicast fraction `α`.
    pub alpha: f64,
    /// Multicast destination-set size per node.
    pub group_size: usize,
    /// Destination pattern.
    pub pattern: Pattern,
    /// Seed for destination sets and simulation.
    pub seed: u64,
}

impl FigureConfig {
    /// Panel label used in tables and CSV file names, e.g.
    /// `quarc-n32-m64-a10-random`.
    pub fn label(&self) -> String {
        format!(
            "quarc-n{}-m{}-a{:02.0}-{}",
            self.n,
            self.msg_len,
            self.alpha * 100.0,
            match self.pattern {
                Pattern::Random => "random",
                Pattern::Localized => "localized",
            }
        )
    }

    /// Build the topology and workload prototype for this panel.
    pub fn build(&self) -> (Quarc, Workload) {
        let topo = Quarc::new(self.n).expect("valid Quarc size");
        let sets = match self.pattern {
            Pattern::Random => DestinationSets::random(&topo, self.group_size, self.seed),
            Pattern::Localized => DestinationSets::localized(&topo, self.group_size, self.seed),
        };
        let wl = Workload::new(self.msg_len, 1e-5, self.alpha, sets).expect("valid workload");
        (topo, wl)
    }
}

/// One operating point: model prediction and simulation measurement.
#[derive(Clone, Debug)]
pub struct PointResult {
    /// Generation rate (messages/node/cycle).
    pub rate: f64,
    /// Model unicast latency (`NaN` beyond the model's saturation).
    pub model_unicast: f64,
    /// Model multicast latency (`NaN` beyond the model's saturation).
    pub model_multicast: f64,
    /// Simulated unicast latency.
    pub sim_unicast: f64,
    /// Simulated multicast latency.
    pub sim_multicast: f64,
    /// 95% CI half-width of the simulated multicast latency.
    pub sim_multicast_ci: f64,
    /// Simulator saturation flag.
    pub sim_saturated: bool,
}

impl PointResult {
    /// Relative model error on unicast latency, when both sides are finite.
    pub fn unicast_error(&self) -> Option<f64> {
        rel_err(self.model_unicast, self.sim_unicast)
    }

    /// Relative model error on multicast latency.
    pub fn multicast_error(&self) -> Option<f64> {
        rel_err(self.model_multicast, self.sim_multicast)
    }
}

fn rel_err(model: f64, sim: f64) -> Option<f64> {
    (model.is_finite() && sim.is_finite() && sim > 0.0).then(|| (model - sim).abs() / sim)
}

/// Build the rate sweep for a panel: `points` rates spanning
/// `[0.15, 1.02] ×` the model's saturation rate, so the curves show both
/// the flat region and the knee, like the paper's graphs.
pub fn sweep_for(cfg: &FigureConfig, points: usize) -> RateSweep {
    let (topo, proto) = cfg.build();
    let sat = max_sustainable_rate(&topo, &proto, ModelOptions::default(), 0.01);
    let sat = sat.max(1e-5);
    RateSweep::linear(0.15 * sat, 1.02 * sat, points.max(2))
}

/// Evaluate one panel: model + simulation at every sweep rate
/// (simulations run in parallel across `threads` workers).
///
/// The engine is selected by `sim_cfg.engine` — event-driven by default,
/// which is what makes dense sweeps over the low-load region affordable.
/// One [`SimPlan`] is built per panel and shared across every sweep point
/// and worker.
pub fn run_panel(
    cfg: &FigureConfig,
    sweep: &RateSweep,
    sim_cfg: SimConfig,
    threads: usize,
) -> Vec<PointResult> {
    let (topo, proto) = cfg.build();
    let plan = SimPlan::build(&topo, &proto);
    let rates: Vec<f64> = sweep.rates().to_vec();
    parallel_map(&rates, threads, |&rate| {
        let wl = proto.at_rate(rate).expect("swept rate is valid");
        let (model_unicast, model_multicast) =
            match AnalyticModel::new(&topo, &wl, ModelOptions::default()).evaluate() {
                Ok(p) => (p.unicast_latency, p.multicast_latency),
                Err(_) => (f64::NAN, f64::NAN),
            };
        let res = build_engine_with_plan(&topo, &wl, sim_cfg, Arc::clone(&plan)).run();
        PointResult {
            rate,
            model_unicast,
            model_multicast,
            sim_unicast: res.unicast.mean,
            sim_multicast: res.multicast.mean,
            sim_multicast_ci: res.multicast.ci95,
            sim_saturated: res.saturated,
        }
    })
}

/// Render a panel as a table (one row per rate).
pub fn panel_table(points: &[PointResult]) -> Table {
    let mut t = Table::new(vec![
        "rate",
        "model_uni",
        "sim_uni",
        "err_uni%",
        "model_mc",
        "sim_mc",
        "mc_ci95",
        "err_mc%",
        "sim_sat",
    ]);
    for p in points {
        t.push_row(vec![
            format!("{:.5}", p.rate),
            fmt_latency(p.model_unicast),
            fmt_latency(p.sim_unicast),
            p.unicast_error()
                .map(|e| format!("{:.1}", e * 100.0))
                .unwrap_or_else(|| "-".into()),
            fmt_latency(p.model_multicast),
            fmt_latency(p.sim_multicast),
            if p.sim_multicast_ci.is_finite() {
                format!("{:.2}", p.sim_multicast_ci)
            } else {
                "-".into()
            },
            p.multicast_error()
                .map(|e| format!("{:.1}", e * 100.0))
                .unwrap_or_else(|| "-".into()),
            if p.sim_saturated { "yes" } else { "no" }.into(),
        ]);
    }
    t
}

/// The default panel set of Fig. 6/7: network sizes 16–128, message
/// lengths 16–64 flits and multicast rates 3–10% as in the paper's
/// evaluation (§4), one representative combination per panel.
///
/// All combinations respect the model's stated assumption that messages
/// are *larger than the network diameter* (`M > N/4`): the Eq. 6 recursion
/// holds a channel until the message tail drains through the path's end,
/// which is only physical when the message spans the remaining path.
/// (The `16,16` panel of the smallest network uses `M = 16 = 4×diameter`.)
/// Violating the assumption (e.g. `N = 128, M = 16`) makes the model
/// overestimate latency by design — demonstrated in EXPERIMENTS.md.
pub fn default_panels(pattern: Pattern, seed: u64) -> Vec<FigureConfig> {
    let combos = [
        (16usize, 16u32, 0.05),
        (16, 32, 0.05),
        (32, 64, 0.10),
        (64, 32, 0.05),
        (128, 64, 0.03),
    ];
    combos
        .iter()
        .map(|&(n, m, a)| FigureConfig {
            n,
            msg_len: m,
            alpha: a,
            // Random sets use N/4 destinations; localized sets must fit a
            // rim quadrant (N/4 nodes), so they use N/8.
            group_size: match pattern {
                Pattern::Random => n / 4,
                Pattern::Localized => (n / 8).max(2),
            },
            pattern,
            seed,
        })
        .collect()
}

/// The complete evaluation cross product of the paper's §4: every
/// `N ∈ {16, 32, 64, 128} × M ∈ {16, 32, 48, 64} × α ∈ {3%, 5%, 10%}`
/// combination that respects the model's `M ≥ N/4` assumption
/// (45 panels). Used by the figure binaries' `--full` mode.
pub fn full_panels(pattern: Pattern, seed: u64) -> Vec<FigureConfig> {
    let mut out = Vec::new();
    for n in [16usize, 32, 64, 128] {
        for m in [16u32, 32, 48, 64] {
            if (m as usize) < n / 4 {
                continue; // violates the message-vs-diameter assumption
            }
            for alpha in [0.03, 0.05, 0.10] {
                out.push(FigureConfig {
                    n,
                    msg_len: m,
                    alpha,
                    group_size: match pattern {
                        Pattern::Random => n / 4,
                        Pattern::Localized => (n / 8).max(2),
                    },
                    pattern,
                    seed,
                });
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        let cfg = FigureConfig {
            n: 32,
            msg_len: 64,
            alpha: 0.10,
            group_size: 8,
            pattern: Pattern::Random,
            seed: 1,
        };
        assert_eq!(cfg.label(), "quarc-n32-m64-a10-random");
    }

    #[test]
    fn sweep_brackets_the_saturation_knee() {
        let cfg = FigureConfig {
            n: 16,
            msg_len: 32,
            alpha: 0.05,
            group_size: 4,
            pattern: Pattern::Random,
            seed: 1,
        };
        let sweep = sweep_for(&cfg, 6);
        assert_eq!(sweep.len(), 6);
        let (topo, proto) = cfg.build();
        let sat = max_sustainable_rate(&topo, &proto, ModelOptions::default(), 0.01);
        let rates = sweep.rates();
        assert!(rates[0] < 0.2 * sat);
        assert!(*rates.last().unwrap() > sat * 0.99);
    }

    #[test]
    fn quick_panel_agrees_at_low_load() {
        let cfg = FigureConfig {
            n: 16,
            msg_len: 16,
            alpha: 0.05,
            group_size: 4,
            pattern: Pattern::Random,
            seed: 3,
        };
        let sweep = RateSweep::explicit(vec![0.002, 0.004]);
        let points = run_panel(&cfg, &sweep, SimConfig::quick(3), 2);
        assert_eq!(points.len(), 2);
        for p in &points {
            assert!(!p.sim_saturated);
            let e = p.multicast_error().expect("both sides finite");
            assert!(
                e < 0.15,
                "model should track simulation within 15% at low load, got {e}"
            );
        }
    }

    #[test]
    fn default_panels_cover_paper_parameter_ranges() {
        let panels = default_panels(Pattern::Random, 1);
        assert_eq!(panels.len(), 5);
        assert!(panels.iter().any(|p| p.n == 16));
        assert!(panels.iter().any(|p| p.n == 128));
        assert!(panels.iter().any(|p| p.msg_len == 16));
        assert!(panels.iter().any(|p| p.msg_len == 64));
        assert!(panels.iter().any(|p| (p.alpha - 0.03).abs() < 1e-9));
        assert!(panels.iter().any(|p| (p.alpha - 0.10).abs() < 1e-9));
        // Every panel respects the "message larger than the diameter"
        // assumption of the model (§2).
        for p in &panels {
            assert!(
                p.msg_len as usize >= p.n / 4,
                "panel {} violates M >= diameter",
                p.label()
            );
        }
    }

    #[test]
    fn full_grid_covers_cross_product_within_assumption() {
        let panels = full_panels(Pattern::Random, 1);
        assert_eq!(panels.len(), 45, "4x4x3 minus assumption-violating cells");
        assert!(panels.iter().all(|p| p.msg_len as usize >= p.n / 4));
        // N=128 keeps only M in {32, 48, 64}.
        assert_eq!(panels.iter().filter(|p| p.n == 128).count(), 9);
        // N=16 keeps every message length.
        assert_eq!(panels.iter().filter(|p| p.n == 16).count(), 12);
    }

    #[test]
    fn panel_table_has_one_row_per_point() {
        let points = vec![PointResult {
            rate: 0.001,
            model_unicast: 20.0,
            model_multicast: 25.0,
            sim_unicast: 21.0,
            sim_multicast: 24.0,
            sim_multicast_ci: 0.5,
            sim_saturated: false,
        }];
        let t = panel_table(&points);
        assert_eq!(t.len(), 1);
        assert!(t.to_csv().contains("0.00100"));
    }
}
