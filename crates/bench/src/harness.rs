//! Figure-panel definitions: the `(N, M, α, pattern)` grids of the
//! paper's Fig. 6/7 evaluation, expressed as [`Scenario`]s.
//!
//! Before the Scenario API this module was the experiment engine itself,
//! hard-wired to the Quarc; it is now a thin catalogue layer. A
//! [`FigureConfig`] names one panel; [`FigureConfig::scenario`] compiles
//! it into the declarative spec the [`crate::runner::Runner`] executes.
//! The panel → scenario mapping is regression-locked byte-for-byte
//! against the pre-Scenario harness by `tests/migration_golden.rs`.

use crate::cli::Options;
use crate::error::Result;
use crate::runner::Runner;
use crate::scenario::{MulticastPattern, Scenario, SweepSpec, WorkloadSpec};
use noc_sim::SimConfig;
use noc_topology::TopologySpec;

/// Destination-set spatial pattern (the difference between Fig. 6 and
/// Fig. 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pattern {
    /// Uniformly random destinations (Fig. 6).
    Random,
    /// Destinations localized on a single rim quadrant (Fig. 7).
    Localized,
}

/// One panel of a figure: a `(N, M, α, pattern)` configuration whose
/// latency is swept over the generation rate.
#[derive(Clone, Debug)]
pub struct FigureConfig {
    /// Quarc size `N`.
    pub n: usize,
    /// Message length `M` in flits.
    pub msg_len: u32,
    /// Multicast fraction `α`.
    pub alpha: f64,
    /// Multicast destination-set size per node.
    pub group_size: usize,
    /// Destination pattern.
    pub pattern: Pattern,
    /// Seed for destination sets and simulation.
    pub seed: u64,
}

impl FigureConfig {
    /// Panel label used in tables and CSV file names, e.g.
    /// `quarc-n32-m64-a10-random`.
    ///
    /// Labels are injective in `α`: whole percentages keep the historic
    /// two-digit form (`a05`, `a10`), anything else embeds the exact
    /// fraction (`0.033` → `a0p033`), so two panels differing only in a
    /// sub-percent `α` can no longer collide onto one file name.
    pub fn label(&self) -> String {
        format!(
            "quarc-n{}-m{}-a{}-{}",
            self.n,
            self.msg_len,
            alpha_code(self.alpha),
            match self.pattern {
                Pattern::Random => "random",
                Pattern::Localized => "localized",
            }
        )
    }

    /// Compile the panel into a [`Scenario`]: Quarc topology, the panel's
    /// destination pattern, the figures' `[0.15, 1.02] × saturation`
    /// sweep with `points` rates, a default analytical overlay and one
    /// replicate.
    pub fn scenario(&self, points: usize, sim: SimConfig) -> Scenario {
        let multicast = match self.pattern {
            Pattern::Random => MulticastPattern::Random {
                group: self.group_size,
            },
            Pattern::Localized => MulticastPattern::Localized {
                group: self.group_size,
            },
        };
        Scenario::new(
            self.label(),
            TopologySpec::Quarc { n: self.n },
            WorkloadSpec::new(self.msg_len, self.alpha, multicast),
            SweepSpec::figure_default(points),
        )
        .with_sim(sim)
        .with_seed(self.seed)
    }
}

/// Label code of a multicast fraction: `{:02.0}` of the percentage when
/// `alpha` is exactly a whole percent, otherwise the exact fraction with
/// `.`/`-` made file-name safe.
///
/// The whole-percent test is "does rounding the percentage and dividing
/// back reproduce `alpha` bit-exactly" — *not* `fract() == 0.0` on
/// `alpha * 100.0`, which float noise breaks (`0.07 * 100.0` is
/// `7.000000000000001`). The reproduction test also makes the code
/// injective: two distinct alphas can only share a rounded form if both
/// equal `round(pct)/100`, i.e. are the same number.
fn alpha_code(alpha: f64) -> String {
    let pct = (alpha * 100.0).round();
    if (0.0..100.0).contains(&pct) && pct / 100.0 == alpha {
        format!("{pct:02.0}")
    } else {
        format!("{alpha}").replace('.', "p").replace('-', "m")
    }
}

/// The default panel set of Fig. 6/7: network sizes 16–128, message
/// lengths 16–64 flits and multicast rates 3–10% as in the paper's
/// evaluation (§4), one representative combination per panel.
///
/// All combinations respect the model's stated assumption that messages
/// are *larger than the network diameter* (`M > N/4`): the Eq. 6 recursion
/// holds a channel until the message tail drains through the path's end,
/// which is only physical when the message spans the remaining path.
/// (The `16,16` panel of the smallest network uses `M = 16 = 4×diameter`.)
/// Violating the assumption (e.g. `N = 128, M = 16`) makes the model
/// overestimate latency by design — demonstrated in EXPERIMENTS.md.
pub fn default_panels(pattern: Pattern, seed: u64) -> Vec<FigureConfig> {
    let combos = [
        (16usize, 16u32, 0.05),
        (16, 32, 0.05),
        (32, 64, 0.10),
        (64, 32, 0.05),
        (128, 64, 0.03),
    ];
    combos
        .iter()
        .map(|&(n, m, a)| FigureConfig {
            n,
            msg_len: m,
            alpha: a,
            // Random sets use N/4 destinations; localized sets must fit a
            // rim quadrant (N/4 nodes), so they use N/8.
            group_size: match pattern {
                Pattern::Random => n / 4,
                Pattern::Localized => (n / 8).max(2),
            },
            pattern,
            seed,
        })
        .collect()
}

/// The complete evaluation cross product of the paper's §4: every
/// `N ∈ {16, 32, 64, 128} × M ∈ {16, 32, 48, 64} × α ∈ {3%, 5%, 10%}`
/// combination that respects the model's `M ≥ N/4` assumption
/// (45 panels). Used by the figure binaries' `--full` mode.
pub fn full_panels(pattern: Pattern, seed: u64) -> Vec<FigureConfig> {
    let mut out = Vec::new();
    for n in [16usize, 32, 64, 128] {
        for m in [16u32, 32, 48, 64] {
            if (m as usize) < n / 4 {
                continue; // violates the message-vs-diameter assumption
            }
            for alpha in [0.03, 0.05, 0.10] {
                out.push(FigureConfig {
                    n,
                    msg_len: m,
                    alpha,
                    group_size: match pattern {
                        Pattern::Random => n / 4,
                        Pattern::Localized => (n / 8).max(2),
                    },
                    pattern,
                    seed,
                });
            }
        }
    }
    out
}

/// The complete Fig. 6/Fig. 7 driver shared by the two binaries (the
/// figures differ only in the destination pattern): compile every panel
/// to a [`Scenario`], execute it through one [`Runner`], print the
/// aligned table and write the CSV (and, with `--json`, the structured
/// JSON) sinks.
pub fn run_figure(figure: &str, pattern: Pattern, blurb: &str, opts: &Options) -> Result<()> {
    println!("== Figure {figure}: model vs simulation, {blurb} ==\n");
    let panels = if opts.full {
        full_panels(pattern, opts.seed)
    } else {
        default_panels(pattern, opts.seed)
    };
    let runner = Runner::new()
        .threads(opts.threads)
        .cache(opts.cache_dir())
        .on_progress(|p| {
            eprint!("\r{}: {}/{} points", p.scenario, p.completed, p.total);
            if p.completed == p.total {
                eprintln!();
            }
        });
    for cfg in panels {
        let scenario = cfg.scenario(opts.points, opts.sim_config());
        let result = runner.run(&scenario)?;
        println!(
            "panel {} (N={}, M={} flits, alpha={:.0}%, |group|={}{}):",
            cfg.label(),
            cfg.n,
            cfg.msg_len,
            cfg.alpha * 100.0,
            cfg.group_size,
            if pattern == Pattern::Localized {
                ", same-rim"
            } else {
                ""
            }
        );
        println!("{}", result.table().to_aligned());
        match opts.write_csv(
            &format!("fig{figure}-{}.csv", cfg.label()),
            &result.to_csv(),
        ) {
            Ok(path) => println!("wrote {}\n", path.display()),
            Err(e) => eprintln!("csv write failed: {e}\n"),
        }
        if opts.json {
            let path = result.write_json(&opts.out)?;
            println!("wrote {}\n", path.display());
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::Runner;

    #[test]
    fn labels_are_stable() {
        let cfg = FigureConfig {
            n: 32,
            msg_len: 64,
            alpha: 0.10,
            group_size: 8,
            pattern: Pattern::Random,
            seed: 1,
        };
        assert_eq!(cfg.label(), "quarc-n32-m64-a10-random");
    }

    #[test]
    fn distinct_alphas_never_share_a_label() {
        // The old `{:02.0}` percent rounding mapped 3%, 3.3% and 3.49% to
        // the same `a03`.
        let mut cfg = FigureConfig {
            n: 32,
            msg_len: 64,
            alpha: 0.03,
            group_size: 8,
            pattern: Pattern::Random,
            seed: 1,
        };
        let labels: Vec<String> = [0.03, 0.033, 0.0349, 0.05, 0.07, 0.1]
            .iter()
            .map(|&a| {
                cfg.alpha = a;
                cfg.label()
            })
            .collect();
        let mut unique = labels.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), labels.len(), "labels collided: {labels:?}");
        // Whole percentages keep their historic file names — including
        // ones like 7% where `alpha * 100.0` carries float noise.
        assert!(labels.contains(&"quarc-n32-m64-a03-random".to_string()));
        assert!(labels.contains(&"quarc-n32-m64-a07-random".to_string()));
        assert!(labels.contains(&"quarc-n32-m64-a10-random".to_string()));
        // Sub-percent alphas embed the exact fraction.
        assert!(labels.contains(&"quarc-n32-m64-a0p033-random".to_string()));
    }

    #[test]
    fn panel_scenarios_sweep_through_the_knee() {
        let cfg = FigureConfig {
            n: 16,
            msg_len: 32,
            alpha: 0.05,
            group_size: 4,
            pattern: Pattern::Random,
            seed: 1,
        };
        let sc = cfg.scenario(6, SimConfig::quick(1));
        assert_eq!(sc.seed, 1);
        let topo = sc.topology.build().unwrap();
        let proto = sc.workload.prototype(topo.as_ref(), sc.seed).unwrap();
        let sweep = sc
            .sweep
            .resolve(topo.as_ref(), &proto, Default::default())
            .unwrap();
        assert_eq!(sweep.len(), 6);
        // Linear over [0.15, 1.02] × saturation.
        let r = sweep.rates();
        assert!((r[5] / r[0] - 1.02 / 0.15).abs() < 1e-9);
    }

    #[test]
    fn quick_panel_agrees_at_low_load() {
        let cfg = FigureConfig {
            n: 16,
            msg_len: 16,
            alpha: 0.05,
            group_size: 4,
            pattern: Pattern::Random,
            seed: 3,
        };
        let mut sc = cfg.scenario(2, SimConfig::quick(3));
        sc.sweep = crate::scenario::SweepSpec::Explicit {
            rates: vec![0.002, 0.004],
        };
        let res = Runner::new().threads(2).run(&sc).expect("panel runs");
        assert_eq!(res.points.len(), 2);
        for p in &res.points {
            assert!(!p.sim_saturated);
            let e = p.multicast_error().expect("both sides finite");
            assert!(
                e < 0.15,
                "model should track simulation within 15% at low load, got {e}"
            );
        }
    }

    #[test]
    fn default_panels_cover_paper_parameter_ranges() {
        let panels = default_panels(Pattern::Random, 1);
        assert_eq!(panels.len(), 5);
        assert!(panels.iter().any(|p| p.n == 16));
        assert!(panels.iter().any(|p| p.n == 128));
        assert!(panels.iter().any(|p| p.msg_len == 16));
        assert!(panels.iter().any(|p| p.msg_len == 64));
        assert!(panels.iter().any(|p| (p.alpha - 0.03).abs() < 1e-9));
        assert!(panels.iter().any(|p| (p.alpha - 0.10).abs() < 1e-9));
        // Every panel respects the "message larger than the diameter"
        // assumption of the model (§2).
        for p in &panels {
            assert!(
                p.msg_len as usize >= p.n / 4,
                "panel {} violates M >= diameter",
                p.label()
            );
        }
    }

    #[test]
    fn full_grid_covers_cross_product_within_assumption() {
        let panels = full_panels(Pattern::Random, 1);
        assert_eq!(panels.len(), 45, "4x4x3 minus assumption-violating cells");
        assert!(panels.iter().all(|p| p.msg_len as usize >= p.n / 4));
        // N=128 keeps only M in {32, 48, 64}.
        assert_eq!(panels.iter().filter(|p| p.n == 128).count(), 9);
        // N=16 keeps every message length.
        assert_eq!(panels.iter().filter(|p| p.n == 16).count(), 12);
    }
}
