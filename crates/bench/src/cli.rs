//! Tiny argument parsing shared by the figure binaries (dependency-free).
//!
//! Supported flags:
//!
//! * `--quick` — short simulations (CI/test runs);
//! * `--points <n>` — sweep points per panel;
//! * `--threads <n>` — parallel workers (0 = all cores);
//! * `--seed <n>` — master seed;
//! * `--engine <event|cycle>` — simulation engine (default `event`;
//!   `cycle` selects the cycle-stepped reference oracle);
//! * `--json` — also write the full structured JSON sink (scenario spec +
//!   curve + per-replicate simulator detail) next to each CSV;
//! * `--out <dir>` — directory for CSV output (default `results/`);
//! * `--no-cache` — disable the content-addressed result cache (by
//!   default, already-simulated points under `<out>/cache/` are reused).

use noc_sim::{EngineKind, SimConfig};
use std::path::PathBuf;

/// Parsed common options.
#[derive(Clone, Debug)]
pub struct Options {
    /// Use short simulation runs.
    pub quick: bool,
    /// Run the full evaluation cross product instead of the default
    /// representative panels.
    pub full: bool,
    /// Sweep points per panel.
    pub points: usize,
    /// Worker threads (0 = all cores).
    pub threads: usize,
    /// Master seed.
    pub seed: u64,
    /// Simulation engine.
    pub engine: EngineKind,
    /// Also write the structured JSON sink next to each CSV.
    pub json: bool,
    /// CSV output directory.
    pub out: PathBuf,
    /// Reuse content-addressed cached simulation points (`--no-cache`
    /// disables).
    pub cache: bool,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            quick: false,
            full: false,
            points: 8,
            threads: 0,
            seed: 42,
            engine: EngineKind::default(),
            json: false,
            out: PathBuf::from("results"),
            cache: true,
        }
    }
}

impl Options {
    /// Parse from an iterator of arguments (without the program name).
    ///
    /// Unknown flags abort with a message naming the flag — typos in an
    /// experiment invocation should fail loudly, not run the default.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Options, String> {
        let mut o = Options::default();
        let mut it = args.into_iter();
        while let Some(arg) = it.next() {
            match arg.as_str() {
                "--quick" => o.quick = true,
                "--full" => o.full = true,
                "--json" => o.json = true,
                "--no-cache" => o.cache = false,
                "--points" => o.points = next_num(&mut it, "--points")? as usize,
                "--threads" => o.threads = next_num(&mut it, "--threads")? as usize,
                "--seed" => o.seed = next_num(&mut it, "--seed")?,
                "--engine" => {
                    let v = it
                        .next()
                        .ok_or_else(|| "--engine needs a value".to_string())?;
                    o.engine = match v.as_str() {
                        "event" | "event-driven" => EngineKind::EventDriven,
                        "cycle" => EngineKind::Cycle,
                        other => return Err(format!("--engine: unknown engine '{other}'")),
                    };
                }
                "--out" => {
                    o.out = PathBuf::from(
                        it.next()
                            .ok_or_else(|| "--out needs a directory".to_string())?,
                    )
                }
                "--help" | "-h" => {
                    return Err("usage: [--quick] [--full] [--points N] [--threads N] \
                         [--seed N] [--engine event|cycle] [--json] [--out DIR] \
                         [--no-cache]"
                        .to_string())
                }
                other => return Err(format!("unknown flag: {other}")),
            }
        }
        if o.points < 2 {
            return Err("--points must be >= 2".into());
        }
        Ok(o)
    }

    /// Parse from the process arguments, exiting on error.
    pub fn from_env() -> Options {
        match Options::parse(std::env::args().skip(1)) {
            Ok(o) => o,
            Err(msg) => {
                eprintln!("{msg}");
                std::process::exit(2);
            }
        }
    }

    /// The simulator configuration implied by `--quick` and `--engine`.
    pub fn sim_config(&self) -> SimConfig {
        let base = if self.quick {
            SimConfig::quick(self.seed)
        } else {
            SimConfig::standard(self.seed)
        };
        base.with_engine(self.engine)
    }

    /// The content-addressed result-cache directory (under the output
    /// directory), or `None` with `--no-cache`.
    pub fn cache_dir(&self) -> Option<PathBuf> {
        self.cache.then(|| self.out.join("cache"))
    }

    /// Write a CSV file under the output directory, creating it if needed.
    pub fn write_csv(&self, name: &str, contents: &str) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(&self.out)?;
        let path = self.out.join(name);
        std::fs::write(&path, contents)?;
        Ok(path)
    }
}

fn next_num<I: Iterator<Item = String>>(it: &mut I, flag: &str) -> Result<u64, String> {
    it.next()
        .ok_or_else(|| format!("{flag} needs a value"))?
        .parse::<u64>()
        .map_err(|e| format!("{flag}: {e}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<Options, String> {
        Options::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults() {
        let o = parse(&[]).unwrap();
        assert!(!o.quick);
        assert!(!o.full);
        assert_eq!(o.points, 8);
        assert_eq!(o.seed, 42);
        assert_eq!(o.out, PathBuf::from("results"));
    }

    #[test]
    fn flags_parse() {
        let o = parse(&[
            "--quick",
            "--full",
            "--points",
            "5",
            "--threads",
            "4",
            "--seed",
            "7",
            "--out",
            "x",
        ])
        .unwrap();
        assert!(o.quick);
        assert!(o.full);
        assert_eq!(o.points, 5);
        assert_eq!(o.threads, 4);
        assert_eq!(o.seed, 7);
        assert_eq!(o.out, PathBuf::from("x"));
        assert_eq!(o.sim_config(), SimConfig::quick(7));
    }

    #[test]
    fn engine_flag_selects_the_oracle_or_the_default() {
        assert_eq!(parse(&[]).unwrap().engine, EngineKind::EventDriven);
        let o = parse(&["--engine", "cycle"]).unwrap();
        assert_eq!(o.engine, EngineKind::Cycle);
        assert_eq!(o.sim_config().engine, EngineKind::Cycle);
        assert_eq!(
            parse(&["--engine", "event"]).unwrap().engine,
            EngineKind::EventDriven
        );
        assert!(parse(&["--engine", "warp"]).is_err());
        assert!(parse(&["--engine"]).is_err());
    }

    #[test]
    fn json_flag_parses() {
        assert!(!parse(&[]).unwrap().json);
        assert!(parse(&["--json"]).unwrap().json);
    }

    #[test]
    fn unknown_flag_rejected() {
        assert!(parse(&["--bogus"]).is_err());
        assert!(parse(&["--points"]).is_err());
        assert!(parse(&["--points", "1"]).is_err());
    }
}
